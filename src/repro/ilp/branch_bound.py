"""Best-first branch-and-bound MILP solver over the pure-python simplex.

Branches on the most-fractional integer variable; nodes are explored in
best-bound order so the incumbent's optimality gap shrinks monotonically.
A wall-clock budget turns the result into ``TIME_LIMIT`` (with the
incumbent attached when one exists), mirroring the 10 s / 30 s budgets the
paper gave its commercial solver.

Search-collapsing machinery (the heuristic-primal pipeline):

* ``mip_start`` — a feasible integer assignment (typically converted from
  an iterative-modulo schedule by :mod:`repro.core.warmstart`) becomes the
  root incumbent, so pruning starts before the first branch.  For a pure
  feasibility model the start *is* optimal and the search never expands a
  node.
* **Lazy nodes** — a child is pushed carrying only its branching bounds
  and the parent's LP objective (a valid lower bound for the subtree);
  the child's own LP is solved when it is popped.  Nodes pruned by a
  later incumbent therefore never pay an LP solve and never hold an
  ``x`` copy, and the parent's relaxation does the work of bounding both
  children.
* **Primal heuristics** — a bounded rounding dive from the root LP point
  supplies an incumbent when none was given, and every fractional node
  gets a snap-and-check rounding probe (one sparse mat-vec) that often
  finds integer points long before branching reaches them.
* **Dual bound** — the minimum bound among open nodes is maintained to
  the end, so timed-out solves report how close they were
  (:attr:`Solution.bound` / :attr:`Solution.gap`) instead of ``None``.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.ilp.model import Model, Variable
from repro.ilp.simplex import LpEngine, LpResult, solve_lp
from repro.ilp.solution import Solution, SolveStatus, relative_gap
from repro.ilp.standard import ArrayForm, start_vector, to_arrays

#: A variable value within this distance of an integer counts as integral.
INT_TOL = 1e-6

#: Constraint-violation tolerance for the rounding probe.
ROW_TOL = 1e-6

#: Cap on LP re-solves a single root dive may spend.
DIVE_LIMIT = 60

#: Environment override for the node LP engine: "warm" (persistent
#: dual-simplex restarts, the default) or "cold" (a fresh two-phase
#: solve per node — the pre-incremental behavior, kept for differential
#: benchmarking).
LP_ENGINE_ENV = "REPRO_LP_ENGINE"

#: A node LP solver: (lb, ub) -> LpResult.
NodeLp = Callable[[Optional[np.ndarray], Optional[np.ndarray]], LpResult]


def _node_lp_solver(form: ArrayForm, lp_engine: Optional[str]) -> NodeLp:
    """Build the node-relaxation solver for one search.

    The warm engine keeps a live tableau across node re-solves (rhs
    retargeting + dual simplex; see :class:`repro.ilp.simplex.LpEngine`)
    and works on the CSR matrix directly — the dense tableau of the old
    path is never materialized.  Both engines answer every node with an
    LP optimum of the same relaxation; only the vertex returned for
    degenerate optima (and hence the branching order) may differ.
    """
    mode = lp_engine or os.environ.get(LP_ENGINE_ENV, "warm")
    if mode == "cold":
        return lambda lb=None, ub=None: solve_lp(form, lb=lb, ub=ub)
    engine = LpEngine(form)
    return engine.solve


@dataclass(order=True)
class _Node:
    """An open subproblem.

    ``bound`` is the parent's LP objective — a valid lower bound for this
    subtree — not the node's own relaxation, which is solved lazily on
    pop.  Only the root carries its LP point in ``x``; branched children
    store just the two bound vectors.
    """

    bound: float
    tie: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)
    x: Optional[np.ndarray] = field(compare=False, default=None)


def _most_fractional(x: np.ndarray, integrality: np.ndarray) -> Optional[int]:
    """Index of the integer variable farthest from integrality, or None."""
    fractional = np.abs(x - np.round(x))
    fractional[~integrality] = -1.0
    j = int(np.argmax(fractional))
    if fractional[j] > INT_TOL:
        return j
    return None


def _round_probe(
    form: ArrayForm,
    x: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
) -> Optional[np.ndarray]:
    """Snap the LP point to integers; return it if it satisfies all rows."""
    snapped = x.copy()
    snapped[form.integrality] = np.round(snapped[form.integrality])
    np.clip(snapped, lb, ub, out=snapped)
    if np.any(np.abs(
        snapped[form.integrality] - np.round(snapped[form.integrality])
    ) > INT_TOL):
        return None
    if form.num_rows:
        ax = form.a_csr @ snapped
        if (np.any(ax < form.row_lower - ROW_TOL)
                or np.any(ax > form.row_upper + ROW_TOL)):
            return None
    return snapped


def _dive(
    form: ArrayForm,
    node_lp: NodeLp,
    x: np.ndarray,
    deadline: Optional[float],
) -> Tuple[Optional[np.ndarray], int]:
    """Depth-first rounding dive: fix the most-fractional variable to its
    nearest integer and re-solve, until integral or stuck.  Returns the
    integral point (or None) and the number of LPs spent."""
    lb = form.lb.copy()
    ub = form.ub.copy()
    lps = 0
    point = x
    for _ in range(DIVE_LIMIT):
        j = _most_fractional(point, form.integrality)
        if j is None:
            return point, lps
        if deadline is not None and time.monotonic() > deadline:
            return None, lps
        pinned = min(max(round(point[j]), lb[j]), ub[j])
        lb[j] = ub[j] = pinned
        result = node_lp(lb, ub)
        lps += 1
        if result.status != "optimal":
            return None, lps
        point = result.x
    return None, lps


def solve_bnb(
    model: Model,
    time_limit: Optional[float] = None,
    gap: float = 1e-6,
    node_limit: int = 200000,
    mip_start: Optional[Dict[Variable, float]] = None,
    lp_engine: Optional[str] = None,
) -> Solution:
    """Solve ``model`` with branch-and-bound; returns a :class:`Solution`.

    ``lp_engine`` selects the node LP backend ("warm"/"cold", default
    warm; overridable via ``REPRO_LP_ENGINE``).  No dense matrix is ever
    materialized — a model settled by its start or an infeasible root
    pays only the CSR lowering.
    """
    start = time.monotonic()
    deadline = None if time_limit is None else start + time_limit
    form = to_arrays(model)
    node_lp = _node_lp_solver(form, lp_engine)
    lower_seconds = time.monotonic() - start
    counter = itertools.count()

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    x0 = start_vector(model, form, mip_start)
    if x0 is not None:
        incumbent_x = x0
        incumbent_obj = float(form.c @ x0 + form.c0)

    root = node_lp(None, None)
    if root.status == "infeasible":
        # An LP-infeasible model cannot have had a valid start; the
        # start validator already rejected anything row-violating.
        return _finish(model, form, SolveStatus.INFEASIBLE, None, None,
                       None, start, 1, lower_seconds)
    if root.status == "unbounded":
        return _finish(model, form, SolveStatus.UNBOUNDED, None, None,
                       None, start, 1, lower_seconds)
    if root.status != "optimal":
        if incumbent_x is not None:
            return _finish(model, form, SolveStatus.FEASIBLE, incumbent_x,
                           incumbent_obj, None, start, 1, lower_seconds)
        return _finish(model, form, SolveStatus.ERROR, None, None, None,
                       start, 1, lower_seconds)

    nodes = 1
    heap = [
        _Node(root.objective, next(counter), form.lb.copy(), form.ub.copy(),
              root.x)
    ]

    if (incumbent_x is None
            and _most_fractional(root.x, form.integrality) is not None):
        dived, dive_lps = _dive(form, node_lp, root.x, deadline)
        nodes += dive_lps
        if dived is not None:
            incumbent_x = dived
            incumbent_obj = float(form.c @ dived + form.c0)

    timed_out = False
    while heap:
        if deadline is not None and time.monotonic() > deadline:
            timed_out = True
            break
        if nodes >= node_limit:
            timed_out = True
            break
        node = heapq.heappop(heap)
        if node.bound >= incumbent_obj - gap:
            continue  # cannot improve the incumbent; LP never solved
        if node.x is not None:
            lp_obj, x = node.bound, node.x
        else:
            result = node_lp(node.lb, node.ub)
            nodes += 1
            if result.status != "optimal":
                continue
            lp_obj, x = result.objective, result.x
            if lp_obj >= incumbent_obj - gap:
                continue
        branch_var = _most_fractional(x, form.integrality)
        if branch_var is None:
            # Integral LP optimum: new incumbent.
            incumbent_obj = lp_obj
            incumbent_x = x
            continue
        probe = _round_probe(form, x, node.lb, node.ub)
        if probe is not None:
            probe_obj = float(form.c @ probe + form.c0)
            if probe_obj < incumbent_obj - gap:
                incumbent_obj = probe_obj
                incumbent_x = probe
        value = x[branch_var]
        for direction in ("down", "up"):
            child_lb = node.lb.copy()
            child_ub = node.ub.copy()
            if direction == "down":
                child_ub[branch_var] = math.floor(value)
            else:
                child_lb[branch_var] = math.ceil(value)
            if child_lb[branch_var] > child_ub[branch_var]:
                continue
            heapq.heappush(
                heap,
                _Node(lp_obj, next(counter), child_lb, child_ub),
            )

    open_bound: Optional[float] = None
    if heap:
        open_bound = min(node.bound for node in heap)
    if incumbent_x is not None:
        if open_bound is None:
            status = SolveStatus.FEASIBLE if timed_out else SolveStatus.OPTIMAL
            bound = incumbent_obj
        else:
            status = SolveStatus.FEASIBLE
            bound = min(open_bound, incumbent_obj)
        return _finish(model, form, status, incumbent_x, incumbent_obj,
                       bound, start, nodes, lower_seconds)
    if timed_out:
        return _finish(model, form, SolveStatus.TIME_LIMIT, None, None,
                       open_bound, start, nodes, lower_seconds)
    return _finish(model, form, SolveStatus.INFEASIBLE, None, None, None,
                   start, nodes, lower_seconds)


def _finish(
    model: Model,
    form: ArrayForm,
    status: SolveStatus,
    x: Optional[np.ndarray],
    minimized_obj: Optional[float],
    minimized_bound: Optional[float],
    start: float,
    nodes: int,
    lower_seconds: float = 0.0,
) -> Solution:
    values = {}
    objective = None
    bound = None
    if x is not None:
        snapped = x.copy()
        snapped[form.integrality] = np.round(snapped[form.integrality])
        values = {var: float(snapped[var.index]) for var in model.variables}
        objective = form.user_objective(float(minimized_obj))
    if minimized_bound is not None:
        bound = form.user_objective(float(minimized_bound))
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        gap=relative_gap(objective, bound),
        solve_seconds=time.monotonic() - start,
        lower_seconds=lower_seconds,
        nodes=nodes,
        backend="bnb",
    )
