"""CPLEX-LP-format export for models.

Lets users inspect the generated scheduling ILPs or feed them to an
external solver (CPLEX, Gurobi, SCIP, `highs` CLI all read this format),
mirroring how the paper's system handed formulations to OSL.
"""

from __future__ import annotations

import io
from typing import Dict

from repro.ilp.model import EQ, GE, LE, LinExpr, Model, Variable

_SENSE_TEXT = {LE: "<=", GE: ">=", EQ: "="}


def _sanitize(name: str) -> str:
    """LP format forbids several characters common in our names."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch in "_." else "_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "v_" + text
    return text


def _unique_names(model: Model) -> Dict[Variable, str]:
    names: Dict[Variable, str] = {}
    used: Dict[str, int] = {}
    for var in model.variables:
        base = _sanitize(var.name)
        count = used.get(base, 0)
        used[base] = count + 1
        names[var] = base if count == 0 else f"{base}_{count}"
    return names


def _expr_text(
    expr: LinExpr, names: Dict[Variable, str], fallback: str = ""
) -> str:
    parts = []
    for var, coef in sorted(expr.terms.items(), key=lambda kv: kv[0].index):
        if coef == 0:
            continue
        sign = "+" if coef >= 0 else "-"
        magnitude = abs(coef)
        coef_text = "" if magnitude == 1 else f"{magnitude:g} "
        parts.append(f"{sign} {coef_text}{names[var]}")
    if not parts:
        # An empty expression (e.g. feasibility objective): reference an
        # arbitrary variable with zero coefficient to stay parseable.
        return f"0 {fallback}" if fallback else "0"
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else text


def write_lp(model: Model) -> str:
    """Serialize ``model`` to CPLEX LP format text."""
    names = _unique_names(model)
    out = io.StringIO()
    sense = "Minimize" if model.sense_minimize else "Maximize"
    out.write(f"\\ {model.name}\n{sense}\n")
    fallback = names[model.variables[0]] if model.variables else ""
    objective = _expr_text(model.objective, names, fallback)
    out.write(f" obj: {objective}\n")
    out.write("Subject To\n")
    for con in model.constraints:
        lhs = _expr_text(LinExpr(con.expr.terms), names, fallback)
        rhs = con.rhs + 0.0  # normalize -0.0 to 0.0
        out.write(
            f" {_sanitize(con.name)}: {lhs} "
            f"{_SENSE_TEXT[con.sense]} {rhs:g}\n"
        )
    out.write("Bounds\n")
    for var in model.variables:
        name = names[var]
        if var.ub == float("inf"):
            out.write(f" {var.lb:g} <= {name} <= +inf\n")
        else:
            out.write(f" {var.lb:g} <= {name} <= {var.ub:g}\n")
    integers = [names[v] for v in model.variables if v.integer]
    if integers:
        out.write("General\n")
        for chunk_start in range(0, len(integers), 8):
            row = " ".join(integers[chunk_start:chunk_start + 8])
            out.write(f" {row}\n")
    out.write("End\n")
    return out.getvalue()
