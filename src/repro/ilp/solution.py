"""Solver results: status enum and solution object."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.ilp.model import ExprLike, Variable


class SolveStatus(enum.Enum):
    """Outcome of a solve call.

    ``TIME_LIMIT`` means the budget expired before optimality was proven;
    an incumbent may or may not be attached.  The paper's experiments use
    exactly this distinction (loops solved within the 10 s / 30 s budgets).
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


def relative_gap(
    objective: Optional[float], bound: Optional[float]
) -> Optional[float]:
    """Relative optimality gap ``|obj - bound| / max(1, |obj|)``.

    ``math.inf`` when a dual bound exists but no incumbent does (the
    honest answer for a timed-out solve that found nothing); ``None``
    only when there is no bound to measure against.
    """
    if bound is None:
        return None
    if objective is None:
        return math.inf
    return abs(objective - bound) / max(1.0, abs(objective))


@dataclass
class Solution:
    """Result of solving a :class:`repro.ilp.Model`."""

    status: SolveStatus
    objective: Optional[float] = None
    values: Dict["Variable", float] = field(default_factory=dict)
    bound: Optional[float] = None
    #: Relative optimality gap (see :func:`relative_gap`); populated
    #: whenever the backend produced a dual bound.
    gap: Optional[float] = None
    solve_seconds: float = 0.0
    #: Portion of ``solve_seconds`` spent lowering the model to arrays.
    lower_seconds: float = 0.0
    nodes: int = 0
    backend: str = ""
    #: The time limit the backend actually ran under, after the
    #: per-process budget clamp (see
    #: :func:`repro.ilp.solve.set_process_time_budget`).  ``None``
    #: means the solve was unbounded.
    effective_time_limit: Optional[float] = None
    #: True when the process budget shrank a caller-supplied
    #: ``time_limit`` — portfolio deadline accounting needs to know
    #: the attempt ran under a smaller budget than configured.
    time_limit_clamped: bool = False
    #: Backend-specific counters (e.g. the SAT backend's conflict /
    #: learned-clause / phase-seconds numbers), merged into the
    #: attempt's ``model_stats`` by the scheduler.
    stats: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.status.has_solution

    def __getitem__(self, var: "Variable") -> float:
        return self.values[var]

    def value(self, expr: "ExprLike") -> float:
        """Evaluate a variable or expression under this solution."""
        from repro.ilp.model import LinExpr

        return LinExpr.coerce(expr).value(self.values)

    def int_value(self, var: "Variable") -> int:
        """Value of an integer variable rounded to the nearest integer."""
        raw = self.values[var]
        rounded = round(raw)
        if abs(raw - rounded) > 1e-4:
            raise ValueError(
                f"variable {var.name} has non-integral value {raw!r}"
            )
        return int(rounded)

    def __repr__(self) -> str:
        return (
            f"Solution({self.status.value}, obj={self.objective}, "
            f"backend={self.backend!r}, {self.solve_seconds:.3f}s)"
        )
