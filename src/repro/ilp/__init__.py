"""Integer linear programming substrate.

The paper solves its unified scheduling+mapping formulation with a
commercial ILP solver (IBM OSL).  This subpackage provides the equivalent,
self-contained stack:

* :mod:`repro.ilp.model` — a small modeling layer (variables, affine
  expressions, linear constraints, objectives) in the spirit of PuLP.
* :mod:`repro.ilp.simplex` — a dense two-phase primal simplex solver for
  the LP relaxations (pure numpy).
* :mod:`repro.ilp.branch_bound` — a best-first branch-and-bound MILP
  solver built on the simplex engine.
* :mod:`repro.ilp.highs` — an adapter to :func:`scipy.optimize.milp`
  (HiGHS), used as the default production backend.

The public surface is :class:`Model`, :class:`Variable`, :class:`LinExpr`,
:class:`Solution`, and :class:`SolveStatus`; everything needed by
:mod:`repro.core.formulation`.
"""

from repro.ilp.errors import IlpError, ModelError, SolverError
from repro.ilp.model import (
    Constraint,
    LinExpr,
    Model,
    ModelStats,
    Variable,
    lin_sum,
)
from repro.ilp.solution import Solution, SolveStatus, relative_gap

__all__ = [
    "Constraint",
    "IlpError",
    "LinExpr",
    "Model",
    "ModelError",
    "ModelStats",
    "Solution",
    "SolveStatus",
    "relative_gap",
    "SolverError",
    "Variable",
    "lin_sum",
]
