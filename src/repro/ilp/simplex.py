"""Dense two-phase primal simplex solver (pure numpy).

This is the LP engine underneath :mod:`repro.ilp.branch_bound`.  It is a
classical tableau implementation: the model is lowered to the standard
form ``min c y  s.t.  A y = b, y >= 0`` with slack/surplus/artificial
columns, phase 1 minimizes the artificial sum, phase 2 the real objective.
Dantzig pricing is used until stalling is detected, then Bland's rule
guarantees termination.

The implementation favours clarity over speed; the production backend for
large models is HiGHS (:mod:`repro.ilp.highs`).  It is nonetheless exact
enough to drive branch-and-bound on every model the test-suite and the
motivating-example experiments build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ilp.standard import ArrayForm

#: Feasibility / optimality tolerance.
TOL = 1e-9

#: After this many consecutive non-improving pivots, switch to Bland's rule.
STALL_LIMIT = 50


@dataclass
class LpResult:
    """Outcome of an LP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    iterations: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def solve_lp(
    form: ArrayForm,
    lb: Optional[np.ndarray] = None,
    ub: Optional[np.ndarray] = None,
    max_iterations: int = 20000,
) -> LpResult:
    """Solve the LP relaxation of ``form``.

    ``lb``/``ub`` optionally override the variable bounds (used by
    branch-and-bound to impose branching decisions without copying the
    whole model).
    """
    lb = form.lb if lb is None else lb
    ub = form.ub if ub is None else ub
    n = form.num_vars
    if np.any(lb > ub + TOL):
        return LpResult(status="infeasible")
    if n == 0:
        lo_ok = np.all(form.row_lower <= TOL)
        hi_ok = np.all(form.row_upper >= -TOL)
        if lo_ok and hi_ok:
            return LpResult(status="optimal", x=np.zeros(0), objective=form.c0)
        return LpResult(status="infeasible")

    rows_a, rows_b, senses = _collect_rows(form, lb, ub)
    tableau = _Tableau(np.asarray(rows_a), np.asarray(rows_b), senses, n)
    status, iterations = tableau.run_phase1(max_iterations)
    if status != "optimal":
        return LpResult(status=status, iterations=iterations)
    if tableau.phase1_objective() > 1e-7:
        return LpResult(status="infeasible", iterations=iterations)
    tableau.drop_artificials()

    shifted_c = form.c.copy()
    status2, iters2 = tableau.run_phase2(shifted_c, max_iterations)
    iterations += iters2
    if status2 != "optimal":
        return LpResult(status=status2, iterations=iterations)

    y = tableau.primal_solution()
    x = y + lb
    objective = float(form.c @ x + form.c0)
    return LpResult(status="optimal", x=x, objective=objective,
                    iterations=iterations)


def _collect_rows(form: ArrayForm, lb: np.ndarray, ub: np.ndarray):
    """Lower two-sided rows and finite upper bounds to single-sense rows.

    Works in the shifted space ``y = x - lb`` so all variables are
    non-negative.  Returns (coefficient rows, rhs values, senses) where
    senses are "<=", ">=", or "==".
    """
    rows_a = []
    rows_b = []
    senses = []
    # The tableau solver is the one consumer of the dense view; grab it
    # once (ArrayForm caches the materialization across LP re-solves).
    dense = form.a_matrix if form.num_rows else None
    shift = dense @ lb if form.num_rows else np.zeros(0)
    for r in range(form.num_rows):
        row = dense[r]
        lo = form.row_lower[r] - shift[r]
        hi = form.row_upper[r] - shift[r]
        if lo == hi:
            rows_a.append(row)
            rows_b.append(lo)
            senses.append("==")
            continue
        if np.isfinite(hi):
            rows_a.append(row)
            rows_b.append(hi)
            senses.append("<=")
        if np.isfinite(lo):
            rows_a.append(row)
            rows_b.append(lo)
            senses.append(">=")
    n = form.num_vars
    for j in range(n):
        span = ub[j] - lb[j]
        if np.isfinite(span):
            bound_row = np.zeros(n)
            bound_row[j] = 1.0
            rows_a.append(bound_row)
            rows_b.append(span)
            senses.append("<=")
    if not rows_a:
        rows_a = [np.zeros(n)]
        rows_b = [0.0]
        senses = ["<="]
    return rows_a, rows_b, senses


class _Tableau:
    """Standard-form tableau with slack, surplus and artificial columns."""

    def __init__(self, a_rows: np.ndarray, b: np.ndarray, senses, n: int):
        m = a_rows.shape[0]
        self.n_struct = n
        a_rows = a_rows.astype(float).copy()
        b = b.astype(float).copy()
        # Normalize to b >= 0 so artificial starts are feasible.
        flip = b < 0
        a_rows[flip] *= -1.0
        b[flip] *= -1.0
        senses = [
            {"<=": ">=", ">=": "<=", "==": "=="}[s] if f else s
            for s, f in zip(senses, flip)
        ]

        n_slack = sum(1 for s in senses if s == "<=")
        n_surplus = sum(1 for s in senses if s == ">=")
        n_art = sum(1 for s in senses if s in (">=", "=="))
        total = n + n_slack + n_surplus + n_art
        matrix = np.zeros((m, total))
        matrix[:, :n] = a_rows
        basis = np.empty(m, dtype=int)
        slack_at = n
        surplus_at = n + n_slack
        art_at = n + n_slack + n_surplus
        self.artificial_start = art_at
        for r, sense in enumerate(senses):
            if sense == "<=":
                matrix[r, slack_at] = 1.0
                basis[r] = slack_at
                slack_at += 1
            elif sense == ">=":
                matrix[r, surplus_at] = -1.0
                surplus_at += 1
                matrix[r, art_at] = 1.0
                basis[r] = art_at
                art_at += 1
            else:
                matrix[r, art_at] = 1.0
                basis[r] = art_at
                art_at += 1
        self.matrix = matrix
        self.b = b
        self.basis = basis
        self.m = m
        self.total = total
        self.blocked = np.zeros(total, dtype=bool)

    # -- phases ---------------------------------------------------------------
    def run_phase1(self, max_iterations: int):
        cost = np.zeros(self.total)
        cost[self.artificial_start:] = 1.0
        self._cost = cost
        return self._iterate(max_iterations, allow_unbounded=False)

    def phase1_objective(self) -> float:
        return float(
            sum(
                self.b[r]
                for r in range(self.m)
                if self.basis[r] >= self.artificial_start
            )
        )

    def drop_artificials(self) -> None:
        """Pivot artificial variables out of the basis, then freeze them."""
        for r in range(self.m):
            if self.basis[r] < self.artificial_start:
                continue
            row = self.matrix[r]
            candidates = np.where(
                np.abs(row[: self.artificial_start]) > TOL
            )[0]
            usable = [j for j in candidates if not self.blocked[j]]
            if usable:
                self._pivot(r, usable[0])
            # A row with no usable pivot is redundant (all-zero after
            # elimination); its artificial stays basic at value 0.
        self.blocked[self.artificial_start:] = True

    def run_phase2(self, c_struct: np.ndarray, max_iterations: int):
        cost = np.zeros(self.total)
        cost[: self.n_struct] = c_struct
        self._cost = cost
        return self._iterate(max_iterations, allow_unbounded=True)

    # -- core iteration ----------------------------------------------------------
    def _reduced_costs(self) -> np.ndarray:
        cb = self._cost[self.basis]
        return self._cost - cb @ self.matrix

    def _iterate(self, max_iterations: int, allow_unbounded: bool):
        iterations = 0
        stall = 0
        last_obj = np.inf
        while iterations < max_iterations:
            reduced = self._reduced_costs()
            reduced[self.blocked] = 0.0
            if np.all(reduced >= -TOL):
                return "optimal", iterations
            if stall >= STALL_LIMIT:
                negatives = np.where(reduced < -TOL)[0]
                enter = int(negatives[0])  # Bland
            else:
                enter = int(np.argmin(reduced))
            column = self.matrix[:, enter]
            positive = column > TOL
            if not np.any(positive):
                if allow_unbounded:
                    return "unbounded", iterations
                return "infeasible", iterations
            ratios = np.full(self.m, np.inf)
            ratios[positive] = self.b[positive] / column[positive]
            min_ratio = ratios.min()
            ties = np.where(ratios <= min_ratio + TOL)[0]
            # Bland-compatible tie-break: smallest basis index leaves.
            leave = int(min(ties, key=lambda r: self.basis[r]))
            self._pivot(leave, enter)
            iterations += 1
            obj = float(self._cost[self.basis] @ self.b)
            if obj >= last_obj - 1e-12:
                stall += 1
            else:
                stall = 0
            last_obj = obj
        return "iteration_limit", iterations

    def _pivot(self, row: int, col: int) -> None:
        pivot_value = self.matrix[row, col]
        self.matrix[row] /= pivot_value
        self.b[row] /= pivot_value
        for r in range(self.m):
            if r == row:
                continue
            factor = self.matrix[r, col]
            if factor != 0.0:
                self.matrix[r] -= factor * self.matrix[row]
                self.b[r] -= factor * self.b[row]
        self.basis[row] = col

    def primal_solution(self) -> np.ndarray:
        y = np.zeros(self.total)
        y[self.basis] = self.b
        return y[: self.n_struct]
