"""Two-phase primal simplex with a persistent warm-restart engine.

This is the LP layer underneath :mod:`repro.ilp.branch_bound`.  Two
entry points share one tableau implementation:

:func:`solve_lp`
    The classical cold solve: the model is lowered to standard form
    ``min c y  s.t.  A y = b, y >= 0`` with slack/surplus/artificial
    columns (in the shifted space ``y = x - lb``), phase 1 minimizes the
    artificial sum, phase 2 the real objective.  Dantzig pricing is used
    until stalling is detected, then Bland's rule guarantees
    termination.  The tableau is assembled straight from the CSR matrix
    — the dense ``ArrayForm.a_matrix`` view is never materialized.

:class:`LpEngine`
    A persistent solver for the *sequence* of closely related LPs a
    branch-and-bound search generates.  The tableau is built once, in
    the space ``y = x - root_lb`` with one bound row per finite root
    span, and kept alive across node re-solves.  A node's branching
    bounds differ from the parent's only in right-hand sides, and every
    row carries an identity column (its slack or artificial started as
    ``e_r``), so the current tableau holds ``B^-1 e_r`` explicitly:
    a bound change is an O(m) rhs update ``b += delta * B^-1 e_r``
    followed by a **dual simplex** run that restores primal feasibility
    — the basis stays dual-feasible across rhs-only changes, so phase 1
    is never repeated.  Bounds with no root row (new lower bounds,
    upper bounds on free variables) are appended as new rows, expressed
    in the current basis by one vector elimination.

    Numerical safety: every optimal answer is audited against the
    original rows/bounds at ``1e-6``; an audit failure, an iteration
    blow-up, or ``REFRESH_SOLVES`` accumulated warm solves resets the
    engine and falls back to a cold solve for that call.  The engine
    therefore never returns an answer the cold path could not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ilp.standard import ArrayForm

#: Feasibility / optimality tolerance.
TOL = 1e-9

#: After this many consecutive non-improving pivots, switch to Bland's rule.
STALL_LIMIT = 50

#: Post-solve audit tolerance (matches the branch-and-bound row checks).
AUDIT_TOL = 1e-6

#: Warm solves between preventive engine rebuilds (bounds numerical drift).
REFRESH_SOLVES = 512


@dataclass
class LpResult:
    """Outcome of an LP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    x: Optional[np.ndarray] = None
    objective: Optional[float] = None
    iterations: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def solve_lp(
    form: ArrayForm,
    lb: Optional[np.ndarray] = None,
    ub: Optional[np.ndarray] = None,
    max_iterations: int = 20000,
) -> LpResult:
    """Solve the LP relaxation of ``form`` from a cold start.

    ``lb``/``ub`` optionally override the variable bounds (used by
    branch-and-bound to impose branching decisions without copying the
    whole model).
    """
    lb = form.lb if lb is None else lb
    ub = form.ub if ub is None else ub
    n = form.num_vars
    if np.any(lb > ub + TOL):
        return LpResult(status="infeasible")
    if n == 0:
        lo_ok = np.all(form.row_lower <= TOL)
        hi_ok = np.all(form.row_upper >= -TOL)
        if lo_ok and hi_ok:
            return LpResult(status="optimal", x=np.zeros(0), objective=form.c0)
        return LpResult(status="infeasible")

    tableau = _build_tableau(form, lb, ub)
    status, iterations = tableau.run_phase1(max_iterations)
    if status != "optimal":
        return LpResult(status=status, iterations=iterations)
    if tableau.phase1_objective() > 1e-7:
        return LpResult(status="infeasible", iterations=iterations)
    tableau.drop_artificials()

    shifted_c = form.c.copy()
    status2, iters2 = tableau.run_phase2(shifted_c, max_iterations)
    iterations += iters2
    if status2 != "optimal":
        return LpResult(status=status2, iterations=iterations)

    y = tableau.primal_solution()
    x = y + lb
    objective = float(form.c @ x + form.c0)
    return LpResult(status="optimal", x=x, objective=objective,
                    iterations=iterations)


def _build_tableau(form: ArrayForm, lb: np.ndarray, ub: np.ndarray) -> "_Tableau":
    """Lower two-sided rows and finite bound spans to a standard-form
    tableau, working in the shifted space ``y = x - lb`` so all
    variables are non-negative.  Rows are assembled straight from the
    CSR matrix; the dense view is never touched.
    """
    n = form.num_vars
    csr = form.a_csr
    shift = csr @ lb if form.num_rows else np.zeros(0)
    # (coeff dict over struct columns, rhs, sense) in emission order:
    # model rows first (<= before >= for two-sided rows), then one bound
    # row per finite span, then a vacuous row if nothing else exists.
    entries: List[Tuple[Dict[int, float], float, str]] = []
    indices, indptr, data = csr.indices, csr.indptr, csr.data
    for r in range(form.num_rows):
        cols = indices[indptr[r]:indptr[r + 1]]
        vals = data[indptr[r]:indptr[r + 1]]
        coeffs = dict(zip(cols, vals))
        lo = form.row_lower[r] - shift[r]
        hi = form.row_upper[r] - shift[r]
        if lo == hi:
            entries.append((coeffs, lo, "=="))
            continue
        if np.isfinite(hi):
            entries.append((coeffs, hi, "<="))
        if np.isfinite(lo):
            entries.append((coeffs, lo, ">="))
    bound_rows: Dict[int, int] = {}
    for j in range(n):
        span = ub[j] - lb[j]
        if np.isfinite(span):
            bound_rows[j] = len(entries)
            entries.append(({j: 1.0}, span, "<="))
    if not entries:
        entries.append(({}, 0.0, "<="))
    tableau = _Tableau(entries, n)
    tableau.bound_row = bound_rows
    return tableau


class _Tableau:
    """Standard-form tableau with slack, surplus and artificial columns.

    Each row records its *identity column* — the slack (``<=``) or
    artificial (``>=`` / ``==``) whose original column was ``e_r`` — so
    the current tableau always exposes ``B^-1 e_r``; :class:`LpEngine`
    uses it for O(m) right-hand-side updates.
    """

    def __init__(self, entries, n: int):
        m = len(entries)
        self.n_struct = n
        b = np.array([rhs for _, rhs, _ in entries], dtype=float)
        # Normalize to b >= 0 so artificial starts are feasible.
        flip = b < 0
        b[flip] *= -1.0
        senses = [
            {"<=": ">=", ">=": "<=", "==": "=="}[s] if f else s
            for (_, _, s), f in zip(entries, flip)
        ]

        n_slack = sum(1 for s in senses if s == "<=")
        n_surplus = sum(1 for s in senses if s == ">=")
        n_art = sum(1 for s in senses if s in (">=", "=="))
        total = n + n_slack + n_surplus + n_art
        matrix = np.zeros((m, total))
        for r, (coeffs, _, _) in enumerate(entries):
            sign = -1.0 if flip[r] else 1.0
            for j, v in coeffs.items():
                matrix[r, j] = sign * v
        basis = np.empty(m, dtype=int)
        identity_col = np.empty(m, dtype=int)
        slack_at = n
        surplus_at = n + n_slack
        art_at = n + n_slack + n_surplus
        self.artificial_start = art_at
        for r, sense in enumerate(senses):
            if sense == "<=":
                matrix[r, slack_at] = 1.0
                basis[r] = slack_at
                identity_col[r] = slack_at
                slack_at += 1
            elif sense == ">=":
                matrix[r, surplus_at] = -1.0
                surplus_at += 1
                matrix[r, art_at] = 1.0
                basis[r] = art_at
                identity_col[r] = art_at
                art_at += 1
            else:
                matrix[r, art_at] = 1.0
                basis[r] = art_at
                identity_col[r] = art_at
                art_at += 1
        self.matrix = matrix
        self.b = b
        self.basis = basis
        self.m = m
        self.total = total
        self.blocked = np.zeros(total, dtype=bool)
        self.identity_col = identity_col
        #: Post-flip rhs currently reflected in the tableau, per row.
        self.applied_rhs = b.copy()
        #: struct var -> row index of its upper-bound row (engine use).
        self.bound_row: Dict[int, int] = {}

    # -- phases ---------------------------------------------------------------
    def run_phase1(self, max_iterations: int):
        cost = np.zeros(self.total)
        cost[self.artificial_start:] = 1.0
        self._cost = cost
        return self._iterate(max_iterations, allow_unbounded=False)

    def phase1_objective(self) -> float:
        return float(
            sum(
                self.b[r]
                for r in range(self.m)
                if self.basis[r] >= self.artificial_start
            )
        )

    def drop_artificials(self) -> None:
        """Pivot artificial variables out of the basis, then freeze them."""
        for r in range(self.m):
            if self.basis[r] < self.artificial_start:
                continue
            row = self.matrix[r]
            candidates = np.where(
                np.abs(row[: self.artificial_start]) > TOL
            )[0]
            usable = [j for j in candidates if not self.blocked[j]]
            if usable:
                self._pivot(r, usable[0])
            # A row with no usable pivot is redundant (all-zero after
            # elimination); its artificial stays basic at value 0.
        self.blocked[self.artificial_start:] = True

    def run_phase2(self, c_struct: np.ndarray, max_iterations: int):
        cost = np.zeros(self.total)
        cost[: self.n_struct] = c_struct
        self._cost = cost
        return self._iterate(max_iterations, allow_unbounded=True)

    # -- core iteration ----------------------------------------------------------
    def _reduced_costs(self) -> np.ndarray:
        cb = self._cost[self.basis]
        return self._cost - cb @ self.matrix

    def _iterate(self, max_iterations: int, allow_unbounded: bool):
        iterations = 0
        stall = 0
        last_obj = np.inf
        while iterations < max_iterations:
            reduced = self._reduced_costs()
            reduced[self.blocked] = 0.0
            if np.all(reduced >= -TOL):
                return "optimal", iterations
            if stall >= STALL_LIMIT:
                negatives = np.where(reduced < -TOL)[0]
                enter = int(negatives[0])  # Bland
            else:
                enter = int(np.argmin(reduced))
            column = self.matrix[:, enter]
            positive = column > TOL
            if not np.any(positive):
                if allow_unbounded:
                    return "unbounded", iterations
                return "infeasible", iterations
            ratios = np.full(self.m, np.inf)
            ratios[positive] = self.b[positive] / column[positive]
            min_ratio = ratios.min()
            ties = np.where(ratios <= min_ratio + TOL)[0]
            # Bland-compatible tie-break: smallest basis index leaves.
            leave = int(min(ties, key=lambda r: self.basis[r]))
            self._pivot(leave, enter)
            iterations += 1
            obj = float(self._cost[self.basis] @ self.b)
            if obj >= last_obj - 1e-12:
                stall += 1
            else:
                stall = 0
            last_obj = obj
        return "iteration_limit", iterations

    def dual_iterate(self, max_iterations: int):
        """Dual simplex: restore primal feasibility after rhs changes.

        Assumes the current basis is dual-feasible for ``self._cost``
        (true right after an optimal primal run, and preserved by every
        dual pivot).  Returns ``("optimal" | "infeasible" |
        "iteration_limit", pivots)``; "infeasible" means some row cannot
        be repaired (dual unbounded — the primal LP is empty).
        """
        iterations = 0
        while iterations < max_iterations:
            leave = int(np.argmin(self.b))
            if self.b[leave] >= -TOL:
                return "optimal", iterations
            row = self.matrix[leave]
            eligible = (row < -TOL) & ~self.blocked
            if not np.any(eligible):
                return "infeasible", iterations
            reduced = self._reduced_costs()
            ratios = np.full(self.total, np.inf)
            ratios[eligible] = reduced[eligible] / -row[eligible]
            min_ratio = ratios.min()
            ties = np.where(ratios <= min_ratio + TOL)[0]
            enter = int(ties[0])  # deterministic Bland-style tie-break
            self._pivot(leave, enter)
            iterations += 1
        return "iteration_limit", iterations

    def _pivot(self, row: int, col: int) -> None:
        pivot_value = self.matrix[row, col]
        self.matrix[row] /= pivot_value
        self.b[row] /= pivot_value
        factors = self.matrix[:, col].copy()
        factors[row] = 0.0
        touched = np.nonzero(factors)[0]
        if touched.size:
            # Rank-1 update; elementwise identical to the row-by-row
            # loop (same multiply-then-subtract per entry).
            self.matrix[touched] -= np.outer(
                factors[touched], self.matrix[row]
            )
            self.b[touched] -= factors[touched] * self.b[row]
        self.basis[row] = col

    # -- engine support -----------------------------------------------------------
    def set_rhs(self, row: int, rhs: float) -> None:
        """Point row ``row``'s original rhs at ``rhs`` (post-flip space).

        O(m): the identity column holds ``B^-1 e_row`` explicitly.
        Only rows that are never flipped at build time (bound rows,
        dynamically added rows) may be retargeted.
        """
        delta = rhs - self.applied_rhs[row]
        if delta == 0.0:
            return
        self.b += delta * self.matrix[:, self.identity_col[row]]
        self.applied_rhs[row] = rhs

    def add_row(self, coeffs: Dict[int, float], rhs: float) -> int:
        """Append ``sum coeffs + slack == rhs`` expressed in the current
        basis; the new slack becomes basic (possibly at a negative
        value — the caller runs the dual simplex afterwards).
        Returns the new row index."""
        a_vec = np.zeros(self.total + 1)
        for j, v in coeffs.items():
            a_vec[j] = v
        a_vec[self.total] = 1.0
        matrix = np.hstack(
            [self.matrix, np.zeros((self.m, 1))]
        )
        a_basic = a_vec[self.basis]
        new_row = a_vec - a_basic @ matrix
        new_b = rhs - float(a_basic @ self.b)
        self.matrix = np.vstack([matrix, new_row[None, :]])
        self.b = np.append(self.b, new_b)
        slack = self.total
        self.total += 1
        self.m += 1
        self.basis = np.append(self.basis, slack)
        self.identity_col = np.append(self.identity_col, slack)
        self.applied_rhs = np.append(self.applied_rhs, rhs)
        self.blocked = np.append(self.blocked, False)
        self._cost = np.append(self._cost, 0.0)
        return self.m - 1

    def primal_solution(self) -> np.ndarray:
        y = np.zeros(self.total)
        y[self.basis] = self.b
        return y[: self.n_struct]


@dataclass
class EngineStats:
    """Counters for one :class:`LpEngine` (diagnostics / tests)."""

    cold_solves: int = 0
    warm_solves: int = 0
    fallbacks: int = 0
    audit_failures: int = 0
    rows_added: int = 0
    dual_pivots: int = 0
    primal_pivots: int = 0


class LpEngine:
    """Warm-restart LP solver for one :class:`ArrayForm`.

    Built for branch-and-bound: node LPs differ from the root only in
    variable bounds, which the engine applies as rhs updates / appended
    bound rows on a live tableau and repairs with the dual simplex (see
    the module docstring).  The engine is *self-auditing*: any answer
    that fails the post-solve feasibility audit, exceeds the pivot
    budget, or requires an unrepresentable bound relaxation falls back
    to a cold :func:`solve_lp` for that call — correctness never
    depends on the warm path.
    """

    def __init__(self, form: ArrayForm, max_iterations: int = 20000) -> None:
        self.form = form
        self.max_iterations = max_iterations
        self.root_lb = form.lb.copy()
        self.root_ub = form.ub.copy()
        self.stats = EngineStats()
        self._tab: Optional[_Tableau] = None
        self._root_infeasible = False
        self._lb_row: Dict[int, int] = {}
        self._applied_lb: Optional[np.ndarray] = None
        self._applied_ub: Optional[np.ndarray] = None
        self._warm_since_refresh = 0

    # -- public ---------------------------------------------------------------
    def solve(
        self,
        lb: Optional[np.ndarray] = None,
        ub: Optional[np.ndarray] = None,
    ) -> LpResult:
        """Solve the LP with the given bounds (defaults: root bounds)."""
        form = self.form
        lb = self.root_lb if lb is None else lb
        ub = self.root_ub if ub is None else ub
        if np.any(lb > ub + TOL):
            return LpResult(status="infeasible")
        if form.num_vars == 0:
            return solve_lp(form, lb, ub, self.max_iterations)
        if np.any(lb < self.root_lb - TOL):
            # Below-root lower bounds can't be expressed in the shifted
            # tableau (y >= 0); branch-and-bound never produces them.
            return self._fallback(lb, ub)
        if self._root_infeasible:
            # Bounds only ever tighten relative to the root box; an
            # infeasible root relaxation rules every node out.
            return LpResult(status="infeasible")
        if self._tab is None:
            result = self._cold_start()
            if self._root_infeasible:
                return LpResult(
                    status="infeasible", iterations=result.iterations
                )
            if self._tab is None:
                # Unbounded / iteration-limited root: not a warmable
                # state, answer tighter boxes with a cold solve.
                return result if self._same_as_root(lb, ub) else (
                    self._fallback(lb, ub)
                )
            if self._same_as_root(lb, ub):
                return result
        return self._warm_solve(lb, ub)

    def reset(self) -> None:
        """Drop the live tableau; the next solve rebuilds from the root."""
        self._tab = None
        self._lb_row = {}
        self._applied_lb = None
        self._applied_ub = None
        self._warm_since_refresh = 0

    # -- internals ------------------------------------------------------------
    def _same_as_root(self, lb: np.ndarray, ub: np.ndarray) -> bool:
        return (
            np.array_equal(lb, self.root_lb)
            and np.array_equal(ub, self.root_ub)
        )

    def _fallback(self, lb: np.ndarray, ub: np.ndarray) -> LpResult:
        self.stats.fallbacks += 1
        return solve_lp(self.form, lb, ub, self.max_iterations)

    def _cold_start(self) -> LpResult:
        """Build the root tableau and run both phases on it."""
        self.stats.cold_solves += 1
        form = self.form
        tab = _build_tableau(form, self.root_lb, self.root_ub)
        status, iterations = tab.run_phase1(self.max_iterations)
        if status != "optimal":
            return LpResult(status=status, iterations=iterations)
        if tab.phase1_objective() > 1e-7:
            self._root_infeasible = True
            return LpResult(status="infeasible", iterations=iterations)
        tab.drop_artificials()
        status2, iters2 = tab.run_phase2(form.c.copy(), self.max_iterations)
        iterations += iters2
        self.stats.primal_pivots += iterations
        if status2 != "optimal":
            # Unbounded / iteration-limit roots are not warmable states.
            return LpResult(status=status2, iterations=iterations)
        self._tab = tab
        self._lb_row = {}
        self._applied_lb = self.root_lb.copy()
        self._applied_ub = self.root_ub.copy()
        self._warm_since_refresh = 0
        y = tab.primal_solution()
        x = y + self.root_lb
        return LpResult(
            status="optimal", x=x,
            objective=float(form.c @ x + form.c0),
            iterations=iterations,
        )

    def _apply_bounds(self, lb: np.ndarray, ub: np.ndarray) -> bool:
        """Retarget the live tableau at the node box; False if a change
        cannot be represented (relaxing a bound past the root box)."""
        tab = self._tab
        root_lb = self.root_lb
        for j in np.nonzero(ub != self._applied_ub)[0]:
            new_ub = ub[j]
            row = tab.bound_row.get(j)
            if np.isfinite(new_ub):
                span = new_ub - root_lb[j]
                if row is None:
                    tab.bound_row[j] = tab.add_row({int(j): 1.0}, span)
                    self.stats.rows_added += 1
                else:
                    tab.set_rhs(row, span)
            else:
                if row is None:
                    pass  # free at the root, free now: nothing to do
                elif np.isfinite(self.root_ub[j]):
                    # Vacuous at the root span: y_j <= root span is the
                    # loosest this row ever needs to be.
                    tab.set_rhs(row, self.root_ub[j] - root_lb[j])
                else:
                    return False  # can't relax a dynamic row to +inf
            self._applied_ub[j] = new_ub
        for j in np.nonzero(lb != self._applied_lb)[0]:
            shift = lb[j] - root_lb[j]
            row = self._lb_row.get(j)
            if row is None:
                if shift > 0.0:
                    # -y_j <= -shift  <=>  y_j >= shift.
                    self._lb_row[j] = tab.add_row({int(j): -1.0}, -shift)
                    self.stats.rows_added += 1
            else:
                tab.set_rhs(row, -shift)
            self._applied_lb[j] = lb[j]
        return True

    def _warm_solve(self, lb: np.ndarray, ub: np.ndarray) -> LpResult:
        if self._warm_since_refresh >= REFRESH_SOLVES:
            # Preventive rebuild: rhs updates and appended rows slowly
            # accumulate round-off in the shared tableau.
            self.reset()
            return self.solve(lb, ub)
        tab = self._tab
        if not self._apply_bounds(lb, ub):
            self.reset()
            return self._fallback(lb, ub)
        self._warm_since_refresh += 1
        self.stats.warm_solves += 1
        status, dual_iters = tab.dual_iterate(self.max_iterations)
        self.stats.dual_pivots += dual_iters
        if status == "infeasible":
            return LpResult(status="infeasible", iterations=dual_iters)
        if status != "optimal":
            self.reset()
            return self._fallback(lb, ub)
        # Polish with the primal phase (handles tolerance drift in the
        # reduced costs; normally zero pivots).
        status2, primal_iters = tab._iterate(
            self.max_iterations, allow_unbounded=True
        )
        self.stats.primal_pivots += primal_iters
        iterations = dual_iters + primal_iters
        if status2 == "unbounded":
            return LpResult(status="unbounded", iterations=iterations)
        if status2 != "optimal":
            self.reset()
            return self._fallback(lb, ub)
        y = tab.primal_solution()
        x = y + self.root_lb
        if not self._audit(x, lb, ub):
            self.stats.audit_failures += 1
            self.reset()
            return self._fallback(lb, ub)
        form = self.form
        return LpResult(
            status="optimal", x=x,
            objective=float(form.c @ x + form.c0),
            iterations=iterations,
        )

    def _audit(self, x: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> bool:
        form = self.form
        if np.any(x < lb - AUDIT_TOL) or np.any(x > ub + AUDIT_TOL):
            return False
        if form.num_rows:
            ax = form.a_csr @ x
            if (np.any(ax < form.row_lower - AUDIT_TOL)
                    or np.any(ax > form.row_upper + AUDIT_TOL)):
                return False
        return True
