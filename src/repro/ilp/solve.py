"""Backend dispatch for :meth:`repro.ilp.Model.solve`."""

from __future__ import annotations

from typing import Optional

from repro.ilp.errors import SolverError
from repro.ilp.model import Model
from repro.ilp.solution import Solution

_BACKENDS = ("auto", "highs", "bnb")


def solve(
    model: Model,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    gap: float = 1e-6,
) -> Solution:
    """Solve ``model`` with the chosen backend.

    ``auto`` prefers HiGHS (fast, production) and falls back to the
    built-in branch-and-bound when scipy's MILP interface is unavailable.
    """
    if backend not in _BACKENDS:
        raise SolverError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    if backend in ("auto", "highs"):
        try:
            from repro.ilp.highs import solve_highs

            return solve_highs(model, time_limit=time_limit, gap=gap)
        except ImportError:
            if backend == "highs":
                raise SolverError("scipy.optimize.milp is not available")
    from repro.ilp.branch_bound import solve_bnb

    return solve_bnb(model, time_limit=time_limit, gap=gap)
