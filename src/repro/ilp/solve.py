"""Backend dispatch for :meth:`repro.ilp.Model.solve`.

Also owns the **per-process time budget**: worker processes spawned by
:mod:`repro.parallel` call :func:`set_process_time_budget` once (via the
pool initializer) and every subsequent solve in that process is capped at
the budget, so a runaway solve cannot exceed the wall-clock its period
attempt was granted — even if an individual call passes a larger (or no)
``time_limit``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.ilp.errors import SolverError
from repro.ilp.model import Model, Variable
from repro.ilp.solution import Solution

_BACKENDS = ("auto", "highs", "bnb", "sat")

#: Process-wide cap on any single solve's time limit (None = uncapped).
_PROCESS_TIME_BUDGET: Optional[float] = None


def set_process_time_budget(seconds: Optional[float]) -> None:
    """Cap every solve in this process at ``seconds`` (None to uncap)."""
    global _PROCESS_TIME_BUDGET
    if seconds is not None:
        _validate_time_limit(seconds, "process time budget")
    _PROCESS_TIME_BUDGET = seconds


def process_time_budget() -> Optional[float]:
    """The current process-wide solve cap, if any."""
    return _PROCESS_TIME_BUDGET


def _validate_time_limit(value: float, label: str = "time_limit") -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SolverError(f"{label} must be a positive number, got {value!r}")
    if math.isnan(value) or value <= 0:
        raise SolverError(f"{label} must be > 0, got {value!r}")


def solve(
    model: Model,
    backend: str = "auto",
    time_limit: Optional[float] = None,
    gap: float = 1e-6,
    mip_start: Optional[Dict[Variable, float]] = None,
) -> Solution:
    """Solve ``model`` with the chosen backend.

    ``auto`` prefers HiGHS (fast, production) and falls back to the
    built-in branch-and-bound when scipy's MILP interface is unavailable.
    Bad parameters fail fast here with :class:`SolverError` instead of
    surfacing as opaque backend errors (or, worse, being silently
    accepted — scipy treats a negative time limit as "no limit").

    ``mip_start`` optionally seeds either backend with a feasible integer
    assignment (see :func:`repro.ilp.standard.start_vector`); an invalid
    start is ignored, never an error.
    """
    if backend not in _BACKENDS:
        raise SolverError(
            f"unknown backend {backend!r}; expected one of {_BACKENDS}"
        )
    if time_limit is not None:
        _validate_time_limit(time_limit)
    if not isinstance(gap, (int, float)) or isinstance(gap, bool):
        raise SolverError(f"gap must be a number >= 0, got {gap!r}")
    if math.isnan(gap) or gap < 0:
        raise SolverError(f"gap must be >= 0, got {gap!r}")
    requested = time_limit
    if _PROCESS_TIME_BUDGET is not None:
        time_limit = (
            _PROCESS_TIME_BUDGET
            if time_limit is None
            else min(time_limit, _PROCESS_TIME_BUDGET)
        )
    solution = _dispatch(model, backend, time_limit, gap, mip_start)
    # Record the budget the backend actually ran under — the process
    # cap must not silently shrink a caller's limit (portfolio
    # deadline accounting reads these).
    solution.effective_time_limit = time_limit
    solution.time_limit_clamped = (
        requested is not None
        and time_limit is not None
        and time_limit < requested
    )
    return solution


def _dispatch(
    model: Model,
    backend: str,
    time_limit: Optional[float],
    gap: float,
    mip_start: Optional[Dict[Variable, float]],
) -> Solution:
    if backend == "sat":
        from repro.sat.backend import solve_sat

        return _checked(solve_sat(model, time_limit=time_limit,
                                  gap=gap, mip_start=mip_start))
    if backend in ("auto", "highs"):
        try:
            from repro.ilp.highs import solve_highs

            return _checked(solve_highs(model, time_limit=time_limit,
                                        gap=gap, mip_start=mip_start))
        except ImportError:
            if backend == "highs":
                raise SolverError("scipy.optimize.milp is not available")
    from repro.ilp.branch_bound import solve_bnb

    return _checked(solve_bnb(model, time_limit=time_limit, gap=gap,
                              mip_start=mip_start))


def _checked(solution: Solution) -> Solution:
    """Fault-injection seam: optionally corrupt a backend's solution.

    With a ``malformed@solve`` fault armed (see
    :mod:`repro.supervision.faults`) the returned solution is mangled —
    missing variables, fractional values — so tests can prove the
    downstream extraction/verification layers reject garbage instead of
    silently scheduling from it.  A no-op unless the fault env var is
    set.
    """
    from repro.supervision import faults

    if solution.values and faults.should_corrupt("solve"):
        return faults.corrupt_solution(solution)
    return solution
