"""HiGHS backend via :func:`scipy.optimize.milp`.

This is the production solver: the paper used IBM OSL with 10 s / 30 s
budgets; HiGHS plays that role here with identical semantics (statuses map
to :class:`repro.ilp.SolveStatus`, the time budget maps to
``TIME_LIMIT``).

scipy's ``milp`` wrapper exposes no MIP-start parameter — and no basis
I/O either (HiGHS itself has ``setSolution``/``setBasis``, but the scipy
surface carries neither) — so hints are injected by the two moves the
wrapper does allow:

* a **feasibility model** (constant objective) is answered from the start
  directly — any feasible integer point is optimal, no solve needed;
* otherwise an **objective cutoff row** ``c @ x <= c @ x0`` is appended,
  which lets HiGHS's own presolve/bounding discard everything worse than
  the incumbent, and if the budget still expires without HiGHS finding a
  point, the validated start itself is returned as the ``FEASIBLE``
  fallback instead of an empty ``TIME_LIMIT``.

The same constraint shapes the incremental T-sweep
(:mod:`repro.core.incremental`): a simplex basis cannot be carried into
the next period's solve on this backend, so cross-attempt reuse here is
entirely formulation-side — shared T-independent analysis, recycled
infeasibility cuts, and the cutoff-row adapter above as the only
solution-hint channel.  Warm *LP* bases across branch-and-bound nodes
exist only in the pure-python backend (:class:`repro.ilp.simplex.
LpEngine`); HiGHS keeps its own internal node warm-starting, which this
wrapper neither sees nor needs to manage.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.model import Model, Variable
from repro.ilp.solution import Solution, SolveStatus, relative_gap
from repro.ilp.standard import start_vector, to_arrays

#: Slack added to the incumbent cutoff so the start itself stays feasible.
CUTOFF_EPS = 1e-6


def solve_highs(
    model: Model,
    time_limit: Optional[float] = None,
    gap: float = 1e-6,
    mip_start: Optional[Dict[Variable, float]] = None,
) -> Solution:
    """Solve ``model`` with scipy's HiGHS MILP interface."""
    start = time.monotonic()
    form = to_arrays(model)
    lower_seconds = time.monotonic() - start
    options = {"mip_rel_gap": gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    x0 = start_vector(model, form, mip_start)
    inc_obj = None if x0 is None else float(form.c @ x0 + form.c0)
    if x0 is not None and not np.any(form.c):
        # Pure feasibility: the validated start is already optimal.
        return _from_vector(
            model, form, SolveStatus.OPTIMAL, x0,
            bound=form.user_objective(inc_obj),
            start=start, lower_seconds=lower_seconds, nodes=0,
        )

    constraints = []
    if form.num_rows:
        # ArrayForm is already sparse; hand the CSR matrix straight to
        # HiGHS instead of round-tripping through a dense tableau.
        constraints.append(
            LinearConstraint(form.a_csr, form.row_lower, form.row_upper)
        )
    if x0 is not None:
        cutoff = (form.c @ x0) + CUTOFF_EPS * max(1.0, abs(inc_obj))
        constraints.append(
            LinearConstraint(form.c[np.newaxis, :], -np.inf, cutoff)
        )
    result = milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality.astype(int),
        bounds=Bounds(form.lb, form.ub),
        options=options,
    )
    elapsed = time.monotonic() - start

    status = _map_status(result)
    bound = None
    if getattr(result, "mip_dual_bound", None) is not None:
        # With the cutoff row the dual bound is computed on a restricted
        # feasible set whose optimum equals the original one (the start
        # witnesses that the original optimum is within the cutoff), so
        # it remains a valid bound for the original model.
        bound = form.user_objective(float(result.mip_dual_bound))
    if x0 is not None and not status.has_solution:
        # HiGHS found nothing under the budget (or declared the cutoff
        # region empty, which the start refutes up to tolerance): fall
        # back to the incumbent.  INFEASIBLE-under-cutoff proves no
        # point beats the start, i.e. the start is optimal.
        fallback = (
            SolveStatus.OPTIMAL if status == SolveStatus.INFEASIBLE
            else SolveStatus.FEASIBLE
        )
        if fallback == SolveStatus.OPTIMAL:
            bound = form.user_objective(inc_obj)
        return _from_vector(
            model, form, fallback, x0, bound=bound, start=start,
            lower_seconds=lower_seconds,
            nodes=int(getattr(result, "mip_node_count", 0) or 0),
        )
    values = {}
    objective = None
    if result.x is not None and status.has_solution:
        x = np.asarray(result.x, dtype=float)
        x[form.integrality] = np.round(x[form.integrality])
        values = {var: float(x[var.index]) for var in model.variables}
        objective = form.user_objective(float(form.c @ x) + form.c0)
    if status == SolveStatus.OPTIMAL and bound is None:
        bound = objective
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        gap=relative_gap(objective, bound),
        solve_seconds=elapsed,
        lower_seconds=lower_seconds,
        nodes=int(getattr(result, "mip_node_count", 0) or 0),
        backend="highs",
    )


def _from_vector(
    model: Model,
    form,
    status: SolveStatus,
    x: np.ndarray,
    bound: Optional[float],
    start: float,
    lower_seconds: float,
    nodes: int,
) -> Solution:
    values = {var: float(x[var.index]) for var in model.variables}
    objective = form.user_objective(float(form.c @ x) + form.c0)
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        gap=relative_gap(objective, bound),
        solve_seconds=time.monotonic() - start,
        lower_seconds=lower_seconds,
        nodes=nodes,
        backend="highs",
    )


def _map_status(result) -> SolveStatus:
    # scipy milp status codes: 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 other.
    code = int(result.status)
    if code == 0:
        return SolveStatus.OPTIMAL
    if code == 1:
        return (
            SolveStatus.FEASIBLE if result.x is not None
            else SolveStatus.TIME_LIMIT
        )
    if code == 2:
        return SolveStatus.INFEASIBLE
    if code == 3:
        return SolveStatus.UNBOUNDED
    return SolveStatus.ERROR
