"""HiGHS backend via :func:`scipy.optimize.milp`.

This is the production solver: the paper used IBM OSL with 10 s / 30 s
budgets; HiGHS plays that role here with identical semantics (statuses map
to :class:`repro.ilp.SolveStatus`, the time budget maps to
``TIME_LIMIT``).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus
from repro.ilp.standard import to_arrays


def solve_highs(
    model: Model,
    time_limit: Optional[float] = None,
    gap: float = 1e-6,
) -> Solution:
    """Solve ``model`` with scipy's HiGHS MILP interface."""
    start = time.monotonic()
    form = to_arrays(model)
    lower_seconds = time.monotonic() - start
    options = {"mip_rel_gap": gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)

    constraints = []
    if form.num_rows:
        # ArrayForm is already sparse; hand the CSR matrix straight to
        # HiGHS instead of round-tripping through a dense tableau.
        constraints.append(
            LinearConstraint(form.a_csr, form.row_lower, form.row_upper)
        )
    result = milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality.astype(int),
        bounds=Bounds(form.lb, form.ub),
        options=options,
    )
    elapsed = time.monotonic() - start

    status = _map_status(result)
    values = {}
    objective = None
    if result.x is not None and status.has_solution:
        x = np.asarray(result.x, dtype=float)
        for j in np.where(form.integrality)[0]:
            x[j] = round(x[j])
        values = {var: float(x[var.index]) for var in model.variables}
        objective = form.user_objective(float(form.c @ x) + form.c0)
    bound = None
    if getattr(result, "mip_dual_bound", None) is not None:
        bound = form.user_objective(float(result.mip_dual_bound))
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        solve_seconds=elapsed,
        lower_seconds=lower_seconds,
        nodes=int(getattr(result, "mip_node_count", 0) or 0),
        backend="highs",
    )


def _map_status(result) -> SolveStatus:
    # scipy milp status codes: 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 other.
    code = int(result.status)
    if code == 0:
        return SolveStatus.OPTIMAL
    if code == 1:
        return (
            SolveStatus.FEASIBLE if result.x is not None
            else SolveStatus.TIME_LIMIT
        )
    if code == 2:
        return SolveStatus.INFEASIBLE
    if code == 3:
        return SolveStatus.UNBOUNDED
    return SolveStatus.ERROR
