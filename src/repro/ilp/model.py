"""A small linear-programming modeling layer.

Provides :class:`Variable`, :class:`LinExpr`, :class:`Constraint` and
:class:`Model`.  Expressions support natural operator syntax::

    m = Model("demo")
    x = m.add_var("x", lb=0, ub=4, integer=True)
    y = m.add_var("y", lb=0)
    m.add(2 * x + y <= 10, name="cap")
    m.minimize(x + 3 * y)
    sol = m.solve()

Only what the scheduling formulation needs is implemented: affine
expressions over real/integer variables, ``<=``/``>=``/``==`` constraints,
and a single linear objective.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.ilp.errors import ModelError

Number = Union[int, float]

#: Senses a constraint may have.
LE, GE, EQ = "<=", ">=", "=="


@dataclass
class ModelStats:
    """Size and timing record for one built/lowered/solved model.

    The ``eliminated_*`` counters report how much smaller the presolve
    pass (:mod:`repro.core.presolve`) made the model relative to the
    plain encoding; the ``*_seconds`` fields split wall time across the
    pipeline phases (presolve analysis, Python model construction,
    lowering to arrays, and the solver itself).

    ``reused_rows`` / ``rebuilt_rows`` attribute each emitted constraint
    to the incremental sweep: a row is *reused* when its T-independent
    ingredients (dependence separations, FU group structure, a pair
    interference verdict unchanged since the previous period) came from
    the carried :class:`repro.core.incremental.SweepContext`, and
    *rebuilt* when it was derived from per-T state alone.  Cold builds
    report every row as rebuilt.  ``analysis_seconds`` is the one-off
    cost of building the shared analysis, attributed to the attempt
    that paid it.
    """

    variables: int = 0
    integer_variables: int = 0
    constraints: int = 0
    nonzeros: int = 0
    eliminated_variables: int = 0
    eliminated_constraints: int = 0
    eliminated_nonzeros: int = 0
    reused_rows: int = 0
    rebuilt_rows: int = 0
    presolve_seconds: float = 0.0
    analysis_seconds: float = 0.0
    build_seconds: float = 0.0
    lower_seconds: float = 0.0
    solve_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Build + lower + solve wall time (presolve counts as build)."""
        return (self.presolve_seconds + self.build_seconds
                + self.lower_seconds + self.solve_seconds)

    def to_dict(self) -> Dict[str, float]:
        data = asdict(self)
        data["total_seconds"] = self.total_seconds
        return data


#: One batched row: (terms, sense, rhs, name).  See :meth:`Model.add_rows`.
RowSpec = Tuple[Dict["Variable", float], str, float, str]


class Variable:
    """A decision variable owned by a :class:`Model`.

    Variables are created through :meth:`Model.add_var`; they are hashable
    by identity and ordered by creation index, which makes expression
    dictionaries deterministic.
    """

    __slots__ = ("name", "lb", "ub", "integer", "index", "_model_id")

    def __init__(
        self,
        name: str,
        lb: float,
        ub: Optional[float],
        integer: bool,
        index: int,
        model_id: int,
    ) -> None:
        self.name = name
        self.lb = float(lb)
        self.ub = math.inf if ub is None else float(ub)
        self.integer = integer
        self.index = index
        self._model_id = model_id

    def __repr__(self) -> str:
        kind = "int" if self.integer else "cont"
        return f"Variable({self.name!r}, [{self.lb}, {self.ub}], {kind})"

    # -- expression building -------------------------------------------------
    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    def __radd__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() + other

    def __sub__(self, other: "ExprLike") -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "ExprLike") -> "LinExpr":
        return (-self._as_expr()) + other

    def __mul__(self, k: Number) -> "LinExpr":
        return self._as_expr() * k

    def __rmul__(self, k: Number) -> "LinExpr":
        return self._as_expr() * k

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    def __le__(self, other: "ExprLike") -> "Constraint":
        return self._as_expr() <= other

    def __ge__(self, other: "ExprLike") -> "Constraint":
        return self._as_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)


ExprLike = Union[Variable, "LinExpr", Number]


class LinExpr:
    """An affine expression ``sum(coef * var) + const``."""

    __slots__ = ("terms", "const")

    def __init__(
        self, terms: Optional[Dict[Variable, float]] = None, const: float = 0.0
    ) -> None:
        self.terms: Dict[Variable, float] = dict(terms) if terms else {}
        self.const = float(const)

    @staticmethod
    def coerce(value: ExprLike) -> "LinExpr":
        """Turn a variable or number into a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._as_expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise TypeError(f"cannot build a linear expression from {value!r}")

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.const)

    # -- arithmetic -----------------------------------------------------------
    def _iadd(self, other: ExprLike, sign: float) -> "LinExpr":
        other = LinExpr.coerce(other)
        result = self.copy()
        for var, coef in other.terms.items():
            new = result.terms.get(var, 0.0) + sign * coef
            if new == 0.0:
                result.terms.pop(var, None)
            else:
                result.terms[var] = new
        result.const += sign * other.const
        return result

    def __add__(self, other: ExprLike) -> "LinExpr":
        return self._iadd(other, 1.0)

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self._iadd(other, 1.0)

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self._iadd(other, -1.0)

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (self * -1.0)._iadd(other, 1.0)

    def __mul__(self, k: Number) -> "LinExpr":
        if not isinstance(k, (int, float)):
            raise TypeError("linear expressions can only be scaled by numbers")
        if k == 0:
            return LinExpr({}, 0.0)
        return LinExpr({v: c * k for v, c in self.terms.items()}, self.const * k)

    def __rmul__(self, k: Number) -> "LinExpr":
        return self * k

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- constraint building ---------------------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - other, LE)

    def __ge__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - other, GE)

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint(self - other, EQ)
        return NotImplemented

    def __hash__(self) -> int:  # expressions are mutable-ish; hash by id
        return id(self)

    # -- evaluation -------------------------------------------------------------
    def value(self, assignment: Dict[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.const + sum(
            coef * assignment[var] for var, coef in self.terms.items()
        )

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}" for v, c in sorted(
            self.terms.items(), key=lambda kv: kv[0].index)]
        if self.const or not parts:
            parts.append(f"{self.const:+g}")
        return " ".join(parts)


def lin_sum(items: Iterable[ExprLike]) -> LinExpr:
    """Sum an iterable of variables/expressions efficiently.

    Unlike ``sum(...)`` this builds a single accumulator dictionary instead
    of a chain of intermediate expressions, which matters for the dense
    resource constraints (hundreds of terms each).
    """
    terms: Dict[Variable, float] = {}
    const = 0.0
    for item in items:
        if isinstance(item, Variable):
            terms[item] = terms.get(item, 0.0) + 1.0
        elif isinstance(item, LinExpr):
            for var, coef in item.terms.items():
                terms[var] = terms.get(var, 0.0) + coef
            const += item.const
        elif isinstance(item, (int, float)):
            const += item
        else:
            raise TypeError(f"cannot sum {item!r} into a linear expression")
    return LinExpr({v: c for v, c in terms.items() if c != 0.0}, const)


class Constraint:
    """A linear constraint ``expr <sense> 0``.

    Stored normalized with everything moved to the left-hand side, so the
    right-hand side for backends is ``-expr.const``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = "") -> None:
        if sense not in (LE, GE, EQ):
            raise ModelError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        return -self.expr.const

    def violation(self, assignment: Dict[Variable, float]) -> float:
        """Non-negative amount by which the assignment violates this row."""
        lhs = self.expr.value(assignment)
        if self.sense == LE:
            return max(0.0, lhs)
        if self.sense == GE:
            return max(0.0, -lhs)
        return abs(lhs)

    def __repr__(self) -> str:
        return f"Constraint({self.name or '?'}: {self.expr!r} {self.sense} 0)"


class Model:
    """A mixed-integer linear program.

    Holds variables, constraints and one objective; delegates solving to a
    backend chosen in :meth:`solve` (``"highs"``, ``"bnb"`` or ``"auto"``).
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense_minimize: bool = True

    # -- construction ------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: Optional[float] = None,
        integer: bool = False,
    ) -> Variable:
        """Create and register a new variable.

        ``lb`` must be finite (the scheduling formulation never needs free
        variables, and finite lower bounds keep the simplex conversion
        simple).
        """
        if not math.isfinite(lb):
            raise ModelError(f"variable {name!r} needs a finite lower bound")
        if ub is not None and ub < lb:
            raise ModelError(f"variable {name!r} has ub {ub} < lb {lb}")
        var = Variable(name, lb, ub, integer, len(self.variables), id(self))
        self.variables.append(var)
        return var

    def add_binary(self, name: str) -> Variable:
        """Shorthand for a 0-1 integer variable."""
        return self.add_var(name, lb=0.0, ub=1.0, integer=True)

    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``/``>=``/``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "Model.add expects a Constraint; did you compare two numbers?"
            )
        self._check_owned(constraint.expr)
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self.constraints)}"
        self.constraints.append(constraint)
        return constraint

    def add_rows(self, rows: Iterable[RowSpec]) -> List[Constraint]:
        """Register a block of rows without building one expression per term.

        Each spec is ``(terms, sense, rhs, name)`` where ``terms`` maps
        variables to coefficients.  The dict is taken by reference (the
        caller must hand over a fresh dict per row), which lets the
        formulation emit its capacity/coloring blocks as plain dict
        merges instead of chained :class:`LinExpr` arithmetic.
        """
        mid = id(self)
        added: List[Constraint] = []
        for terms, sense, rhs, name in rows:
            if sense not in (LE, GE, EQ):
                raise ModelError(f"unknown constraint sense {sense!r}")
            for var in terms:
                if var._model_id != mid:
                    raise ModelError(
                        f"variable {var.name!r} belongs to a different model"
                    )
            expr = LinExpr.__new__(LinExpr)
            expr.terms = terms
            expr.const = -float(rhs)
            con = Constraint(expr, sense,
                             name or f"c{len(self.constraints)}")
            self.constraints.append(con)
            added.append(con)
        return added

    def minimize(self, expr: ExprLike) -> None:
        expr = LinExpr.coerce(expr)
        self._check_owned(expr)
        self.objective = expr
        self.sense_minimize = True

    def maximize(self, expr: ExprLike) -> None:
        expr = LinExpr.coerce(expr)
        self._check_owned(expr)
        self.objective = expr
        self.sense_minimize = False

    def _check_owned(self, expr: LinExpr) -> None:
        mid = id(self)
        for var in expr.terms:
            if var._model_id != mid:
                raise ModelError(
                    f"variable {var.name!r} belongs to a different model"
                )

    # -- introspection -------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.integer)

    def iter_rows(self) -> Iterator[Constraint]:
        return iter(self.constraints)

    def stats(self) -> Dict[str, int]:
        """Size summary used by the experiment harness."""
        nonzeros = sum(len(c.expr.terms) for c in self.constraints)
        return {
            "variables": self.num_vars,
            "integer_variables": self.num_integer_vars,
            "constraints": self.num_constraints,
            "nonzeros": nonzeros,
        }

    # -- solving ---------------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        gap: float = 1e-6,
        mip_start: Optional[Dict["Variable", float]] = None,
    ):
        """Solve the model and return a :class:`repro.ilp.Solution`.

        ``backend`` is ``"highs"`` (scipy/HiGHS), ``"bnb"`` (the built-in
        branch-and-bound over the pure-python simplex), or ``"auto"``
        (HiGHS when available, otherwise branch-and-bound).  ``mip_start``
        optionally warm-starts the search with a feasible assignment.
        """
        from repro.ilp import solve as _solve

        return _solve.solve(self, backend=backend, time_limit=time_limit,
                            gap=gap, mip_start=mip_start)

    def render(self, max_rows: Optional[int] = 40) -> str:
        """Human-readable model dump (debugging aid).

        Shows the objective, up to ``max_rows`` constraints, and a
        bounds summary; pass ``max_rows=None`` for everything.  For a
        machine-readable export use :func:`repro.ilp.lp_format.write_lp`.
        """
        sense = "min" if self.sense_minimize else "max"
        lines = [
            f"model {self.name!r}: {self.num_vars} vars "
            f"({self.num_integer_vars} integer), "
            f"{self.num_constraints} rows",
            f"  {sense} {self.objective!r}",
        ]
        shown = self.constraints
        truncated = 0
        if max_rows is not None and len(shown) > max_rows:
            truncated = len(shown) - max_rows
            shown = shown[:max_rows]
        for con in shown:
            lines.append(
                f"  {con.name}: {con.expr!r} {con.sense} 0"
            )
        if truncated:
            lines.append(f"  ... {truncated} more row(s)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"int={self.num_integer_vars}, rows={self.num_constraints})"
        )


def standard_arrays(model: Model) -> Tuple:
    """Convenience re-export; see :func:`repro.ilp.standard.to_arrays`."""
    from repro.ilp.standard import to_arrays

    return to_arrays(model)
