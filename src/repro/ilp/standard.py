"""Conversion of a :class:`repro.ilp.Model` to array form for backends."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.ilp.errors import ModelError
from repro.ilp.model import EQ, GE, LE, Model


@dataclass
class ArrayForm:
    """Dense array representation of a model.

    The objective is always stored as *minimize* ``c @ x + c0``; for a
    maximization model ``c``/``c0`` are pre-negated and ``flipped`` is set
    so callers can restore the user-facing objective value.
    """

    c: np.ndarray
    c0: float
    a_matrix: np.ndarray
    row_lower: np.ndarray
    row_upper: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    flipped: bool
    row_names: List[str]

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    @property
    def num_rows(self) -> int:
        return self.a_matrix.shape[0]

    def user_objective(self, minimized_value: float) -> float:
        """Map a minimized objective value back to the model's sense."""
        return -minimized_value if self.flipped else minimized_value


def to_arrays(model: Model) -> ArrayForm:
    """Lower a model to the dense :class:`ArrayForm`.

    Rows are encoded with two-sided bounds ``row_lower <= A x <= row_upper``
    which matches both HiGHS and the simplex driver.
    """
    n = model.num_vars
    c = np.zeros(n)
    for var, coef in model.objective.terms.items():
        c[var.index] += coef
    c0 = model.objective.const
    flipped = not model.sense_minimize
    if flipped:
        c = -c
        c0 = -c0

    m = model.num_constraints
    a_matrix = np.zeros((m, n))
    row_lower = np.full(m, -np.inf)
    row_upper = np.full(m, np.inf)
    row_names = []
    for r, con in enumerate(model.constraints):
        row_names.append(con.name)
        for var, coef in con.expr.terms.items():
            a_matrix[r, var.index] += coef
        rhs = con.rhs
        if con.sense == LE:
            row_upper[r] = rhs
        elif con.sense == GE:
            row_lower[r] = rhs
        elif con.sense == EQ:
            row_lower[r] = rhs
            row_upper[r] = rhs
        else:  # pragma: no cover - Constraint guards senses already
            raise ModelError(f"unknown sense {con.sense!r}")

    lb = np.array([v.lb for v in model.variables], dtype=float)
    ub = np.array([v.ub for v in model.variables], dtype=float)
    integrality = np.array([v.integer for v in model.variables], dtype=bool)
    return ArrayForm(
        c=c,
        c0=c0,
        a_matrix=a_matrix,
        row_lower=row_lower,
        row_upper=row_upper,
        lb=lb,
        ub=ub,
        integrality=integrality,
        flipped=flipped,
        row_names=row_names,
    )
