"""Conversion of a :class:`repro.ilp.Model` to array form for backends."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.ilp.errors import ModelError
from repro.ilp.model import EQ, GE, LE, Model, Variable


@dataclass
class ArrayForm:
    """Array representation of a model.

    The constraint matrix is assembled as COO triplets and stored sparse
    (CSR); a dense view is materialized lazily only for the pure-Python
    simplex backend, which works row-by-row on a dense tableau anyway.
    The objective is always stored as *minimize* ``c @ x + c0``; for a
    maximization model ``c``/``c0`` are pre-negated and ``flipped`` is set
    so callers can restore the user-facing objective value.
    """

    c: np.ndarray
    c0: float
    a_csr: sp.csr_matrix
    row_lower: np.ndarray
    row_upper: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    flipped: bool
    row_names: List[str]
    _dense: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    @property
    def num_rows(self) -> int:
        return int(self.a_csr.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.a_csr.nnz)

    @property
    def a_matrix(self) -> np.ndarray:
        """Dense view of the constraint matrix (lazy, cached).

        Only the simplex backend and debugging code should touch this;
        HiGHS consumes :attr:`a_csr` directly.
        """
        if self._dense is None:
            self._dense = self.a_csr.toarray()
        return self._dense

    def user_objective(self, minimized_value: float) -> float:
        """Map a minimized objective value back to the model's sense."""
        return -minimized_value if self.flipped else minimized_value


def to_arrays(model: Model) -> ArrayForm:
    """Lower a model to :class:`ArrayForm` via COO-triplet assembly.

    Rows are encoded with two-sided bounds ``row_lower <= A x <= row_upper``
    which matches both HiGHS and the simplex driver.  Duplicate (row, col)
    triplets sum, matching the ``+=`` semantics of the old dense path.
    """
    n = model.num_vars
    c = np.zeros(n)
    for var, coef in model.objective.terms.items():
        c[var.index] += coef
    c0 = model.objective.const
    flipped = not model.sense_minimize
    if flipped:
        c = -c
        c0 = -c0

    m = model.num_constraints
    coo_rows: List[int] = []
    coo_cols: List[int] = []
    coo_data: List[float] = []
    row_lower = np.full(m, -np.inf)
    row_upper = np.full(m, np.inf)
    row_names = []
    for r, con in enumerate(model.constraints):
        row_names.append(con.name)
        for var, coef in con.expr.terms.items():
            coo_rows.append(r)
            coo_cols.append(var.index)
            coo_data.append(coef)
        rhs = con.rhs
        if con.sense == LE:
            row_upper[r] = rhs
        elif con.sense == GE:
            row_lower[r] = rhs
        elif con.sense == EQ:
            row_lower[r] = rhs
            row_upper[r] = rhs
        else:  # pragma: no cover - Constraint guards senses already
            raise ModelError(f"unknown sense {con.sense!r}")

    a_csr = sp.csr_matrix(
        (coo_data, (coo_rows, coo_cols)), shape=(m, n), dtype=float
    )
    lb = np.array([v.lb for v in model.variables], dtype=float)
    ub = np.array([v.ub for v in model.variables], dtype=float)
    integrality = np.array([v.integer for v in model.variables], dtype=bool)
    return ArrayForm(
        c=c,
        c0=c0,
        a_csr=a_csr,
        row_lower=row_lower,
        row_upper=row_upper,
        lb=lb,
        ub=ub,
        integrality=integrality,
        flipped=flipped,
        row_names=row_names,
    )


def start_vector(
    model: Model,
    form: ArrayForm,
    values: Optional[Dict[Variable, float]],
    tol: float = 1e-6,
) -> Optional[np.ndarray]:
    """Dense vector for a warm start, or None if it is not usable.

    A usable start assigns every variable, respects the bounds, is
    integral on the integer variables, and satisfies every row.  Both
    MILP backends share this validation so a stale or converted-wrong
    start silently degrades to a cold solve instead of corrupting the
    search with an unattainable incumbent objective.
    """
    if not values:
        return None
    x = np.empty(form.num_vars)
    for var in model.variables:
        if var not in values:
            return None
        x[var.index] = float(values[var])
    if np.any(x < form.lb - tol) or np.any(x > form.ub + tol):
        return None
    ints = form.integrality
    if np.any(np.abs(x[ints] - np.round(x[ints])) > tol):
        return None
    x[ints] = np.round(x[ints])
    np.clip(x, form.lb, form.ub, out=x)
    if form.num_rows:
        ax = form.a_csr @ x
        if (np.any(ax < form.row_lower - tol)
                or np.any(ax > form.row_upper + tol)):
            return None
    return x
