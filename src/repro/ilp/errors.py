"""Exception hierarchy for the ILP substrate."""


class IlpError(Exception):
    """Base class for all errors raised by :mod:`repro.ilp`."""


class ModelError(IlpError):
    """The model is malformed (bad bounds, foreign variables, ...)."""


class SolverError(IlpError):
    """A backend failed in a way that is not an ordinary infeasibility."""
