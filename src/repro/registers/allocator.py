"""Register allocation for software-pipelined kernels.

Values in a modulo schedule have *cyclic* live ranges: a range longer
than ``T`` overlaps the next iteration's instance of itself, so the
kernel is unrolled by the modulo-variable-expansion factor ``U`` (see
:func:`repro.registers.unroll_factor`) and every value instance becomes
a circular arc on a circle of ``U * T`` slots.  Allocation is then
circular-arc coloring — the same problem (and the same Hendren et
al. [10] framing) the paper uses for FU mapping, applied to registers,
with first-fit coloring in start order.

The allocator is exact about *conflicts* (two arcs sharing a register
never overlap — independently validated) and heuristic about *count*
(first-fit on circular arcs uses at most ``2 * MaxLive - 1`` registers;
in practice it lands close to the MaxLive lower bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import VerificationError
from repro.core.schedule import Schedule
from repro.registers.pressure import (
    max_live,
    unroll_factor,
    value_live_ranges,
)


@dataclass(frozen=True)
class ValueRange:
    """One value's live range: producer op + absolute [def, last_use)."""

    producer: int
    define_time: int
    last_use: int

    @property
    def span(self) -> int:
        return self.last_use - self.define_time


@dataclass
class RegisterAllocation:
    """Result of :func:`allocate_registers`."""

    schedule: Schedule
    unroll: int
    num_registers: int
    #: (producer op, kernel copy 0..unroll-1) -> register index
    assignment: Dict[Tuple[int, int], int] = field(default_factory=dict)
    ranges: List[ValueRange] = field(default_factory=list)

    @property
    def circle(self) -> int:
        """Slots on the allocation circle (= unroll * T)."""
        return self.unroll * self.schedule.t_period

    def register_name(self, producer: int, copy: int) -> str:
        return f"r{self.assignment[(producer, copy)]}"

    def render(self) -> str:
        lines = [
            f"register allocation for {self.schedule.ddg.name!r}: "
            f"{self.num_registers} register(s), kernel unrolled "
            f"x{self.unroll} (circle {self.circle})"
        ]
        for value in self.ranges:
            op_name = self.schedule.ddg.ops[value.producer].name
            regs = ", ".join(
                self.register_name(value.producer, copy)
                for copy in range(self.unroll)
            )
            lines.append(
                f"  {op_name}: live [{value.define_time}, "
                f"{value.last_use}) -> {regs}"
            )
        return "\n".join(lines)


def value_ranges(schedule: Schedule) -> List[ValueRange]:
    """Live range per value-producing op (ops with flow consumers).

    A value is defined at its producer's completion and dies at its last
    consumer's start (across loop-carried uses); see
    :func:`repro.registers.pressure.value_live_ranges`.
    """
    return [
        ValueRange(producer=producer, define_time=define, last_use=last)
        for producer, define, last in value_live_ranges(schedule)
    ]


def _arc_cells(start: int, length: int, circle: int) -> range:
    """Slot indices (mod circle) covered by an arc; length < circle."""
    return range(start, start + length)


def _arcs_conflict(a_start: int, a_len: int, b_start: int, b_len: int,
                   circle: int) -> bool:
    """Whether two arcs on the circle intersect (cell-exact)."""
    a_cells = {(a_start + k) % circle for k in range(a_len)}
    return any((b_start + k) % circle in a_cells for k in range(b_len))


def allocate_registers(
    schedule: Schedule, max_registers: Optional[int] = None
) -> RegisterAllocation:
    """First-fit circular-arc register allocation.

    Raises :class:`VerificationError` if ``max_registers`` is given and
    insufficient, or if any live range spans the whole circle (cannot
    happen for ranges bounded by ``U * T`` by construction).
    """
    t_period = schedule.t_period
    unroll = unroll_factor(schedule)
    circle = unroll * t_period
    ranges = value_ranges(schedule)

    arcs: List[Tuple[int, int, int, int]] = []  # (start, len, producer, copy)
    for value in ranges:
        length = value.span
        if length >= circle:
            # By definition of the unroll factor, span <= unroll * T.
            length = circle  # pragma: no cover - defensive
        for copy in range(unroll):
            start = (value.define_time + copy * t_period) % circle
            arcs.append((start, length, value.producer, copy))

    arcs.sort(key=lambda a: (a[0], -a[1], a[2], a[3]))
    assignment: Dict[Tuple[int, int], int] = {}
    register_arcs: List[List[Tuple[int, int]]] = []  # per register
    for start, length, producer, copy in arcs:
        placed = False
        for register, existing in enumerate(register_arcs):
            if all(
                not _arcs_conflict(start, length, s, l, circle)
                for s, l in existing
            ):
                existing.append((start, length))
                assignment[(producer, copy)] = register
                placed = True
                break
        if not placed:
            register_arcs.append([(start, length)])
            assignment[(producer, copy)] = len(register_arcs) - 1
    num_registers = len(register_arcs)
    if max_registers is not None and num_registers > max_registers:
        raise VerificationError(
            f"allocation needs {num_registers} registers but only "
            f"{max_registers} are available"
        )
    allocation = RegisterAllocation(
        schedule=schedule,
        unroll=unroll,
        num_registers=num_registers,
        assignment=assignment,
        ranges=ranges,
    )
    validate_allocation(allocation)
    return allocation


def validate_allocation(allocation: RegisterAllocation) -> None:
    """Independent conflict check: no register holds two live values at
    one circle slot."""
    circle = allocation.circle
    t_period = allocation.schedule.t_period
    occupancy: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for value in allocation.ranges:
        for copy in range(allocation.unroll):
            register = allocation.assignment[(value.producer, copy)]
            start = (value.define_time + copy * t_period) % circle
            for k in range(value.span):
                slot = (start + k) % circle
                holder = occupancy.get((register, slot))
                if holder is not None and holder != (value.producer, copy):
                    raise VerificationError(
                        f"register r{register} holds two values at "
                        f"slot {slot}: op {holder[0]} copy {holder[1]} "
                        f"and op {value.producer} copy {copy}"
                    )
                occupancy[(register, slot)] = (value.producer, copy)

    lower = max_live(allocation.schedule)
    if allocation.num_registers < lower:
        raise VerificationError(
            f"allocation claims {allocation.num_registers} registers, "
            f"below the MaxLive lower bound {lower}"
        )
