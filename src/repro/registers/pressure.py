"""Lifetime, buffer and MaxLive computations over periodic schedules.

Conventions (matching the register-allocation line the paper cites
[5, 18, 21]):

* The value produced by instruction ``i`` for consumer ``j`` (dependence
  ``(i -> j, m)``) is **defined** when ``i`` completes, at
  ``t_i + d_i``, and is **last used** at the consumer's start in the
  consuming iteration: ``t_j + T*m``.  Its lifetime is
  ``t_j + T*m - t_i`` cycles of *occupancy* counted from the producer's
  start (the value must be buffered from issue in hardware that latches
  results at completion; we report both spans).
* Under a periodic schedule a new instance of every value is created
  each ``T`` cycles, so a value whose lifetime exceeds ``T`` needs
  ``ceil(lifetime / T)`` simultaneously-live copies — the Ning–Gao
  buffer count.
* MaxLive counts, for each kernel slot, how many values are live across
  it in steady state; the maximum over slots lower-bounds the register
  count of any allocation [5].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.schedule import Schedule


@dataclass(frozen=True)
class Lifetime:
    """One value's lifetime under a periodic schedule."""

    dep_index: int
    producer: int
    consumer: int
    distance: int
    #: Producer completion time (value defined).
    define_time: int
    #: Consumer start in the consuming iteration (last use).
    last_use: int

    @property
    def span(self) -> int:
        """Cycles the value is live (0 when consumed as defined)."""
        return self.last_use - self.define_time


def lifetimes(schedule: Schedule) -> List[Lifetime]:
    """Per-dependence lifetimes (flow edges carry values; others are
    ordering-only and reported with their kinds left to the caller)."""
    result = []
    lat = schedule.ddg.latencies(schedule.machine)
    for index, dep in enumerate(schedule.ddg.deps):
        define_time = schedule.starts[dep.src] + lat[dep.src]
        last_use = schedule.starts[dep.dst] + schedule.t_period * dep.distance
        result.append(
            Lifetime(
                dep_index=index,
                producer=dep.src,
                consumer=dep.dst,
                distance=dep.distance,
                define_time=define_time,
                last_use=last_use,
            )
        )
    return result


def buffer_requirements(schedule: Schedule) -> Dict[int, int]:
    """Ning–Gao buffer counts per dependence index.

    ``ceil((t_j + T*m - t_i) / T)`` live copies of the value produced by
    ``i`` for ``j`` coexist in steady state (counting from the
    producer's *issue*, the form used by the ILP's ``min_buffers``
    objective).  Values consumed within the producing period need 1.
    """
    t_period = schedule.t_period
    buffers: Dict[int, int] = {}
    for life in lifetimes(schedule):
        issue_to_use = (
            schedule.starts[life.consumer]
            + t_period * life.distance
            - schedule.starts[life.producer]
        )
        buffers[life.dep_index] = max(1, -(-issue_to_use // t_period))
    return buffers


def total_buffers(schedule: Schedule) -> int:
    """Sum of per-value buffer counts (the [18] objective value)."""
    return sum(buffer_requirements(schedule).values())


def value_live_ranges(schedule: Schedule) -> List[Tuple[int, int, int]]:
    """Per-*value* live ranges ``(producer, define, last_use)``.

    Consumers of one producer share the value, so per-producer ranges
    merge all its outgoing dependences (define at completion, die at the
    latest consumer's start).  Zero-span values are omitted.
    """
    define: Dict[int, int] = {}
    last_use: Dict[int, int] = {}
    for life in lifetimes(schedule):
        define[life.producer] = life.define_time
        current = last_use.get(life.producer)
        if current is None or life.last_use > current:
            last_use[life.producer] = life.last_use
    return [
        (producer, define[producer], last_use[producer])
        for producer in sorted(define)
        if last_use[producer] > define[producer]
    ]


def max_live(schedule: Schedule) -> int:
    """Peak simultaneously-live *values* across kernel slots (MaxLive [5]).

    A value live over absolute span ``[define, last_use)`` contributes to
    kernel slot ``t`` once per period it crosses: for each slot we count
    ``#{k : define <= k < last_use, k = t (mod T)}`` summed over values.
    Distinct consumers of one value share it (producer-merged ranges).
    """
    t_period = schedule.t_period
    pressure = [0] * t_period
    for _, define, last_use in value_live_ranges(schedule):
        for absolute in range(define, last_use):
            pressure[absolute % t_period] += 1
    return max(pressure, default=0)


def unroll_factor(schedule: Schedule) -> int:
    """Kernel unroll degree for modulo variable expansion.

    Without rotating registers, a value living ``q = ceil(span / T)``
    periods needs ``q`` renamed copies, so the kernel must be unrolled
    ``max_q`` times (Lam's MVE; cf. [21]'s hardware alternative).
    """
    worst = 1
    for life in lifetimes(schedule):
        if life.span <= 0:
            continue
        worst = max(worst, -(-life.span // schedule.t_period))
    return worst
