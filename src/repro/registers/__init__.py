"""Register/buffer pressure analysis for periodic schedules.

The paper (§7) notes its framework "can incorporate minimizing buffers
(logical registers) as in [18] or minimizing the maximum number of live
values at any time step, as in [5]".  This package implements both
metrics *as analyses over finished schedules* (the ILP-side objective is
``min_buffers`` in :class:`repro.core.FormulationOptions`):

* :func:`lifetimes` — per-dependence value lifetimes under the periodic
  schedule;
* :func:`buffer_requirements` — Ning–Gao [18] buffer counts
  (``ceil(lifetime / T)`` live copies per value);
* :func:`max_live` — Eichenberger–Davidson–Abraham [5] MaxLive: the peak
  number of simultaneously live values at any kernel slot;
* :func:`unroll_factor` — the modulo-variable-expansion unroll degree a
  rotating-register-free code generator would need (Rau et al. [21]).
"""

from repro.registers.allocator import (
    RegisterAllocation,
    allocate_registers,
    validate_allocation,
    value_ranges,
)
from repro.registers.pressure import (
    Lifetime,
    buffer_requirements,
    lifetimes,
    max_live,
    total_buffers,
    unroll_factor,
    value_live_ranges,
)

__all__ = [
    "Lifetime",
    "RegisterAllocation",
    "allocate_registers",
    "buffer_requirements",
    "lifetimes",
    "max_live",
    "total_buffers",
    "unroll_factor",
    "validate_allocation",
    "value_live_ranges",
    "value_ranges",
]
