"""Acyclic list scheduling — the no-software-pipelining baseline.

Schedules one iteration of the loop body (intra-iteration dependences
only) with greedy earliest-slot placement against the reservation tables,
then runs iterations back-to-back.  The effective initiation interval is
the iteration makespan, which the software pipeliner should beat whenever
the loop has exploitable cross-iteration parallelism — the headline
speedup shape of the paper's motivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import SchedulingError
from repro.ddg.graph import Ddg
from repro.machine import Machine


@dataclass
class ListScheduleResult:
    """A single-iteration schedule executed sequentially."""

    loop_name: str
    starts: List[int]
    colors: Dict[int, int]
    makespan: int

    @property
    def effective_ii(self) -> int:
        """Initiation interval when iterations run back-to-back."""
        return self.makespan


def list_schedule(ddg: Ddg, machine: Machine) -> ListScheduleResult:
    """Greedy list schedule of one iteration (m=0 edges only)."""
    ddg.validate_against(machine)
    n = ddg.num_ops
    lat = ddg.latencies(machine)
    separations = ddg.dep_latencies(machine)
    intra = [
        (d, separations[idx]) for idx, d in enumerate(ddg.deps)
        if d.distance == 0
    ]

    # Topological order by depth (cycles always contain an m>=1 edge, so
    # the intra-iteration subgraph is acyclic for schedulable loops).
    indegree = [0] * n
    for dep, _ in intra:
        indegree[dep.dst] += 1
    ready = sorted(
        [i for i in range(n) if indegree[i] == 0],
        key=lambda i: (-lat[i], i),
    )
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for dep, _ in intra:
            if dep.src != node:
                continue
            indegree[dep.dst] -= 1
            if indegree[dep.dst] == 0:
                ready.append(dep.dst)
        ready.sort(key=lambda i: (-lat[i], i))
    if len(order) != n:
        raise SchedulingError(
            f"loop {ddg.name!r} has an intra-iteration dependence cycle"
        )

    # occupancy[(fu, copy)][(stage, cycle)] busy
    occupancy: Dict[Tuple[str, int], set] = {}
    starts: List[Optional[int]] = [None] * n
    colors: Dict[int, int] = {}
    for op_index in order:
        op = ddg.ops[op_index]
        fu = machine.fu_type_of(op.op_class)
        table = machine.reservation_for(op.op_class)
        lo = 0
        for dep, sep in intra:
            if dep.dst == op_index and starts[dep.src] is not None:
                lo = max(lo, starts[dep.src] + sep)
        slot = lo
        while True:
            placed = False
            cells = [
                (stage, slot + cycle) for stage, cycle in table.usage_offsets()
            ]
            for copy in range(fu.count):
                board = occupancy.setdefault((fu.name, copy), set())
                if all(cell not in board for cell in cells):
                    board.update(cells)
                    starts[op_index] = slot
                    colors[op_index] = copy
                    placed = True
                    break
            if placed:
                break
            slot += 1

    final = [int(s) for s in starts]  # type: ignore[arg-type]
    makespan = max(
        final[i] + max(lat[i], machine.reservation_for(
            ddg.ops[i].op_class).length)
        for i in range(n)
    )
    # Loop-carried dependences may stretch the restart distance further
    # (value produced late in one iteration, consumed early m later).
    for dep, sep in zip(ddg.deps, separations):
        if dep.distance == 0:
            continue
        needed = final[dep.src] + sep - final[dep.dst]
        if needed > 0:
            per_iter = -(-needed // dep.distance)  # ceil
            makespan = max(makespan, per_iter)
    return ListScheduleResult(
        loop_name=ddg.name, starts=final, colors=colors, makespan=makespan
    )
