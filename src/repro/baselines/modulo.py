"""Iterative modulo scheduling (Rau, MICRO-27 1994 [22]) with hazards.

The heuristic counterpart to the paper's ILP: operations are placed into
a modulo reservation table (MRT) kept **per physical FU copy**, so the
heuristic performs scheduling and mapping simultaneously — the same
problem the ILP solves exactly.  When no slot/copy fits, the op is
*forced* into place and conflicting ops are evicted and rescheduled
(the "iterative" part), under a placement budget; exhausting the budget
bumps the initiation interval.

Differences from Rau's formulation are deliberate simplifications that do
not change the algorithm's character: priorities are static heights, and
dependence violations caused by a forced placement evict the offending
neighbours rather than being patched in place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bounds import lower_bounds, modulo_feasible_t
from repro.core.errors import SchedulingError
from repro.core.schedule import Schedule
from repro.ddg.graph import Ddg
from repro.machine import Machine


@dataclass
class ModuloScheduleResult:
    """Outcome of the heuristic scheduler."""

    loop_name: str
    mii: int
    achieved_ii: Optional[int]
    schedule: Optional[Schedule]
    placements: int
    tried_iis: List[int]

    @property
    def delta_from_mii(self) -> Optional[int]:
        if self.achieved_ii is None:
            return None
        return self.achieved_ii - self.mii


def iterative_modulo_schedule(
    ddg: Ddg,
    machine: Machine,
    max_extra: int = 40,
    budget_ratio: int = 8,
) -> ModuloScheduleResult:
    """Schedule ``ddg`` heuristically; try II = MII .. MII + max_extra."""
    ddg.validate_against(machine)
    bounds = lower_bounds(ddg, machine)
    mii = bounds.t_lb
    tried: List[int] = []
    total_placements = 0
    for ii in range(mii, mii + max_extra + 1):
        if not modulo_feasible_t(ddg, machine, ii):
            continue
        tried.append(ii)
        schedule, placements = _attempt(ddg, machine, ii, budget_ratio)
        total_placements += placements
        if schedule is not None:
            return ModuloScheduleResult(
                loop_name=ddg.name,
                mii=mii,
                achieved_ii=ii,
                schedule=schedule,
                placements=total_placements,
                tried_iis=tried,
            )
    return ModuloScheduleResult(
        loop_name=ddg.name,
        mii=mii,
        achieved_ii=None,
        schedule=None,
        placements=total_placements,
        tried_iis=tried,
    )


def _heights(ddg: Ddg, machine: Machine, ii: int) -> List[float]:
    """Static priority: longest path to any sink under period ``ii``.

    Bellman-style relaxation; converges because II >= MII implies no
    positive cycles in the (d - II*m)-weighted graph.
    """
    lat = ddg.latencies(machine)
    separations = ddg.dep_latencies(machine)
    height = [float(lat[i]) for i in range(ddg.num_ops)]
    for _ in range(ddg.num_ops + 1):
        changed = False
        for dep, sep in zip(ddg.deps, separations):
            candidate = height[dep.dst] + sep - ii * dep.distance
            if candidate > height[dep.src] + 1e-9:
                height[dep.src] = candidate
                changed = True
        if not changed:
            break
    return height


class _Mrt:
    """Modulo reservation tables per physical FU copy."""

    def __init__(self, machine: Machine, ii: int) -> None:
        self.machine = machine
        self.ii = ii
        # cells[(fu, copy)][(stage, slot)] = op index
        self.cells: Dict[Tuple[str, int], Dict[Tuple[int, int], int]] = {}

    def footprint(self, op_class: str, start: int) -> List[Tuple[int, int]]:
        table = self.machine.reservation_for(op_class)
        return [
            (stage, (start + cycle) % self.ii)
            for stage, cycle in table.usage_offsets()
        ]

    def conflicts(
        self, op_class: str, start: int, fu_name: str, copy: int
    ) -> List[int]:
        board = self.cells.setdefault((fu_name, copy), {})
        footprint = self.footprint(op_class, start)
        return sorted(
            {board[cell] for cell in footprint if cell in board}
        )

    def place(self, op_index: int, op_class: str, start: int,
              fu_name: str, copy: int) -> None:
        board = self.cells.setdefault((fu_name, copy), {})
        for cell in self.footprint(op_class, start):
            board[cell] = op_index

    def remove(self, op_index: int) -> None:
        for board in self.cells.values():
            stale = [cell for cell, holder in board.items()
                     if holder == op_index]
            for cell in stale:
                del board[cell]


def _attempt(
    ddg: Ddg, machine: Machine, ii: int, budget_ratio: int
) -> Tuple[Optional[Schedule], int]:
    n = ddg.num_ops
    separations = ddg.dep_latencies(machine)
    heights = _heights(ddg, machine, ii)
    budget = budget_ratio * n
    placements = 0

    start: List[Optional[int]] = [None] * n
    copy_of: List[Optional[int]] = [None] * n
    last_tried: List[int] = [-1] * n
    mrt = _Mrt(machine, ii)
    pending = sorted(range(n), key=lambda i: (-heights[i], i))

    def earliest_start(i: int) -> int:
        lo = 0
        for dep, sep in zip(ddg.deps, separations):
            if dep.dst != i or start[dep.src] is None:
                continue
            lo = max(lo, start[dep.src] + sep - ii * dep.distance)
        return lo

    def unschedule(i: int) -> None:
        mrt.remove(i)
        start[i] = None
        copy_of[i] = None
        pending.append(i)
        pending.sort(key=lambda x: (-heights[x], x))

    while pending and placements < budget:
        op_index = pending.pop(0)
        op = ddg.ops[op_index]
        fu = machine.fu_type_of(op.op_class)
        lo = earliest_start(op_index)
        if start[op_index] is None and last_tried[op_index] >= lo:
            lo = last_tried[op_index] + 1
        placed = False
        for candidate in range(lo, lo + ii):
            for copy in range(fu.count):
                if not mrt.conflicts(op.op_class, candidate, fu.name, copy):
                    _commit(
                        mrt, ddg, op_index, candidate, fu.name, copy,
                        start, copy_of,
                    )
                    last_tried[op_index] = candidate
                    placed = True
                    break
            if placed:
                break
        if not placed:
            # Force placement at the earliest slot on copy 0, evicting.
            candidate = max(lo, last_tried[op_index] + 1)
            victims = mrt.conflicts(op.op_class, candidate, fu.name, 0)
            for victim in victims:
                unschedule(victim)
            _commit(mrt, ddg, op_index, candidate, fu.name, 0,
                    start, copy_of)
            last_tried[op_index] = candidate
        placements += 1
        # Evict scheduled ops whose dependences the new placement violates.
        for dep, sep in zip(ddg.deps, separations):
            if start[dep.src] is None or start[dep.dst] is None:
                continue
            if dep.src != op_index and dep.dst != op_index:
                continue
            if (start[dep.dst] - start[dep.src]
                    < sep - ii * dep.distance):
                victim = dep.dst if dep.src == op_index else dep.src
                if victim != op_index:
                    unschedule(victim)

    if pending:
        return None, placements

    # Normalize start times to be non-negative (they already are) and
    # package as a Schedule.
    starts = [int(s) for s in start]  # type: ignore[arg-type]
    shift = min(starts)
    if shift < 0:  # pragma: no cover - earliest_start never goes negative
        starts = [s - shift for s in starts]
    colors = {i: int(c) for i, c in enumerate(copy_of)}  # type: ignore[arg-type]
    schedule = Schedule(
        ddg=ddg, machine=machine, t_period=ii, starts=starts, colors=colors
    )
    return schedule, placements


def _commit(mrt, ddg, op_index, candidate, fu_name, copy, start, copy_of):
    mrt.place(op_index, ddg.ops[op_index].op_class, candidate, fu_name, copy)
    start[op_index] = candidate
    copy_of[op_index] = copy
