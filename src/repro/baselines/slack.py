"""Slack-based (lifetime-sensitive) modulo scheduling — Huff [13].

The second heuristic comparator the paper's related-work section names.
Differences from plain iterative modulo scheduling
(:mod:`repro.baselines.modulo`):

* ops are prioritized by **slack** — ``lstart - estart`` under the
  current partial schedule — so critical ops are placed first;
* placement is **bidirectional**: ops with unplaced successors fill
  from their early bound upward, ops feeding already-placed consumers
  fill from their late bound downward, keeping value lifetimes short
  (the "lifetime-sensitive" part);
* conflicts force placement with eviction under a budget, as in Rau.

Like the other baselines, it performs scheduling *and* mapping (per-unit
modulo reservation tables), so its II is directly comparable to the
ILP's T.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.modulo import ModuloScheduleResult, _Mrt
from repro.core.bounds import lower_bounds, modulo_feasible_t
from repro.core.schedule import Schedule
from repro.ddg.graph import Ddg
from repro.machine import Machine

#: Latest-start horizon used when an op has no placed successors.
_HORIZON_SLOP = 3


def slack_modulo_schedule(
    ddg: Ddg,
    machine: Machine,
    max_extra: int = 40,
    budget_ratio: int = 8,
) -> ModuloScheduleResult:
    """Schedule ``ddg`` with slack-driven placement; II = MII upward."""
    ddg.validate_against(machine)
    bounds = lower_bounds(ddg, machine)
    mii = bounds.t_lb
    tried: List[int] = []
    placements_total = 0
    for ii in range(mii, mii + max_extra + 1):
        if not modulo_feasible_t(ddg, machine, ii):
            continue
        tried.append(ii)
        schedule, placements = _attempt(ddg, machine, ii, budget_ratio)
        placements_total += placements
        if schedule is not None:
            return ModuloScheduleResult(
                loop_name=ddg.name,
                mii=mii,
                achieved_ii=ii,
                schedule=schedule,
                placements=placements_total,
                tried_iis=tried,
            )
    return ModuloScheduleResult(
        loop_name=ddg.name,
        mii=mii,
        achieved_ii=None,
        schedule=None,
        placements=placements_total,
        tried_iis=tried,
    )


def _attempt(
    ddg: Ddg, machine: Machine, ii: int, budget_ratio: int
) -> Tuple[Optional[Schedule], int]:
    n = ddg.num_ops
    separations = ddg.dep_latencies(machine)
    horizon = ii * (n + _HORIZON_SLOP) + sum(ddg.latencies(machine))
    budget = budget_ratio * n
    placements = 0

    start: List[Optional[int]] = [None] * n
    copy_of: List[Optional[int]] = [None] * n
    last_forced: List[int] = [-1] * n
    mrt = _Mrt(machine, ii)

    def estart(i: int) -> int:
        lo = 0
        for dep, sep in zip(ddg.deps, separations):
            if dep.dst != i or dep.src == i or start[dep.src] is None:
                continue
            lo = max(lo, start[dep.src] + sep - ii * dep.distance)
        return lo

    def lstart(i: int) -> int:
        hi = horizon
        for dep, sep in zip(ddg.deps, separations):
            if dep.src != i or dep.dst == i or start[dep.dst] is None:
                continue
            hi = min(hi, start[dep.dst] - sep + ii * dep.distance)
        return hi

    def unschedule(i: int) -> None:
        mrt.remove(i)
        start[i] = None
        copy_of[i] = None
        pending.add(i)

    def place(i: int, slot: int, fu_name: str, copy: int) -> None:
        mrt.place(i, ddg.ops[i].op_class, slot, fu_name, copy)
        start[i] = slot
        copy_of[i] = copy

    pending = set(range(n))
    while pending and placements < budget:
        # Slack priority under the *current* partial schedule.
        chosen = min(
            pending,
            key=lambda i: (lstart(i) - estart(i), -_degree(ddg, i), i),
        )
        pending.discard(chosen)
        op = ddg.ops[chosen]
        fu = machine.fu_type_of(op.op_class)
        lo = estart(chosen)
        hi = lstart(chosen)
        downward = any(
            dep.src == chosen and start[dep.dst] is not None
            for dep in ddg.deps
        )
        window: List[int]
        if hi < lo:
            window = []
        elif downward:
            window = list(range(min(hi, lo + ii - 1), lo - 1, -1))
        else:
            window = list(range(lo, min(hi, lo + ii - 1) + 1))
        placed = False
        for slot in window:
            for copy in range(fu.count):
                if not mrt.conflicts(op.op_class, slot, fu.name, copy):
                    place(chosen, slot, fu.name, copy)
                    placed = True
                    break
            if placed:
                break
        if not placed:
            slot = max(lo, last_forced[chosen] + 1)
            victims = mrt.conflicts(op.op_class, slot, fu.name, 0)
            for victim in victims:
                unschedule(victim)
            place(chosen, slot, fu.name, 0)
            last_forced[chosen] = slot
        placements += 1
        # Evict neighbours whose dependence the new placement breaks.
        for dep, sep in zip(ddg.deps, separations):
            if start[dep.src] is None or start[dep.dst] is None:
                continue
            if chosen not in (dep.src, dep.dst):
                continue
            if start[dep.dst] - start[dep.src] < sep - ii * dep.distance:
                victim = dep.dst if dep.src == chosen else dep.src
                if victim != chosen:
                    unschedule(victim)

    if pending:
        return None, placements
    starts = [int(s) for s in start]  # type: ignore[arg-type]
    shift = min(starts)
    if shift > 0:
        # Slide everything down so the pattern starts at cycle 0's
        # congruence class unchanged (offsets mod ii preserved only if
        # we shift by multiples of ii).
        shift -= shift % ii
        starts = [s - shift for s in starts]
    colors = {i: int(c) for i, c in enumerate(copy_of)}  # type: ignore[arg-type]
    return (
        Schedule(ddg=ddg, machine=machine, t_period=ii, starts=starts,
                 colors=colors),
        placements,
    )


def _degree(ddg: Ddg, i: int) -> int:
    return sum(1 for d in ddg.deps if d.src == i or d.dst == i)
