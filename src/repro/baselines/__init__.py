"""Heuristic comparators.

The paper positions its ILP against the heuristic software-pipelining
line ([7, 13, 22, 26]); its earlier work [9] compared three heuristics
against the clean-pipeline ILP.  This package provides:

* :mod:`repro.baselines.modulo` — iterative modulo scheduling (Rau [22])
  extended with reservation-table hazards and integrated FU binding
  (heuristic scheduling *and* mapping);
* :mod:`repro.baselines.slack` — slack-based lifetime-sensitive modulo
  scheduling (Huff [13]), bidirectional placement;
* :mod:`repro.baselines.listsched` — acyclic list scheduling of a single
  iteration (no software pipelining), the "sequential loop" baseline.
"""

from repro.baselines.listsched import ListScheduleResult, list_schedule
from repro.baselines.modulo import ModuloScheduleResult, iterative_modulo_schedule
from repro.baselines.slack import slack_modulo_schedule

__all__ = [
    "ListScheduleResult",
    "ModuloScheduleResult",
    "iterative_modulo_schedule",
    "list_schedule",
    "slack_modulo_schedule",
]
