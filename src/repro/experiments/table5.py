"""Table 5: solver-effort distribution (experiment E9).

The paper gave its commercial ILP solver 10 s, then 30 s per loop (the
"10/30" budgets) and reported how many loops were solved within them.
This harness buckets total per-loop solve time into the same bands plus a
fine-grained histogram, from the attempt records of a Table 4 run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.scheduler import SchedulingResult

#: The paper's per-loop budgets (seconds).
PAPER_BUDGETS = (10.0, 30.0)

#: Fine histogram bucket edges (seconds).
HISTOGRAM_EDGES = (0.01, 0.1, 1.0, 10.0, 30.0)


@dataclass
class Table5:
    """Solver-effort summary."""

    total_loops: int = 0
    scheduled: int = 0
    solved_within: dict = field(default_factory=dict)   # budget -> count
    histogram: dict = field(default_factory=dict)        # edge -> count
    slowest: float = 0.0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.total_loops if self.total_loops else 0.0

    def render(self) -> str:
        lines = [
            "Table 5 — solver effort",
            f"loops: {self.total_loops}  scheduled: {self.scheduled}  "
            f"mean {self.mean_seconds * 1000:.1f} ms  "
            f"slowest {self.slowest:.2f} s",
        ]
        for budget in PAPER_BUDGETS:
            count = self.solved_within.get(budget, 0)
            pct = 100 * count / self.total_loops if self.total_loops else 0
            lines.append(
                f"  solved within {budget:>5.0f} s: {count:>5} ({pct:.1f}%)"
            )
        lines.append("  histogram of per-loop solve time:")
        previous = 0.0
        for edge in HISTOGRAM_EDGES:
            count = self.histogram.get(edge, 0)
            lines.append(f"    ({previous:g}, {edge:g}] s: {count}")
            previous = edge
        overflow = self.histogram.get(float("inf"), 0)
        lines.append(f"    > {HISTOGRAM_EDGES[-1]:g} s: {overflow}")
        return "\n".join(lines)


def run_table5_from_batch(report) -> Table5:
    """Build Table 5 from a :class:`repro.parallel.BatchReport`.

    Works from the entries' JSON form, so it handles both live results
    and ``raw`` entries carried over from loaded reports or resume
    journals.  Loops that errored inside the batch are skipped (they
    have no attempt records to aggregate).
    """
    table = Table5()
    for entry in report.entries:
        doc = entry.to_json_dict()
        if doc.get("error") is not None:
            continue
        seconds = sum(
            a.get("seconds", 0.0) for a in doc.get("attempts", [])
        )
        _tally(table, seconds, doc.get("achieved_t") is not None)
    return table


def run_table5(results: Iterable[SchedulingResult]) -> Table5:
    """Summarize solver effort from per-loop scheduling results."""
    table = Table5()
    for result in results:
        seconds = sum(a.seconds for a in result.attempts)
        _tally(table, seconds, result.schedule is not None)
    return table


def _tally(table: Table5, seconds: float, scheduled: bool) -> None:
    table.total_loops += 1
    if scheduled:
        table.scheduled += 1
        for budget in PAPER_BUDGETS:
            if seconds <= budget:
                table.solved_within[budget] = (
                    table.solved_within.get(budget, 0) + 1
                )
    for edge in HISTOGRAM_EDGES:
        if seconds <= edge:
            table.histogram[edge] = table.histogram.get(edge, 0) + 1
            break
    else:
        table.histogram[float("inf")] = (
            table.histogram.get(float("inf"), 0) + 1
        )
    table.slowest = max(table.slowest, seconds)
    table.total_seconds += seconds
