"""Machine-parameter sensitivity sweeps (experiment E19).

The paper evaluates one machine model; a natural follow-on question for
its framework is *how the achieved rates respond to hardware*: sweep the
FP-unit count (and optionally memory ports) of the motivating-style
machine across a corpus and record mean achieved T per configuration —
the throughput/hardware response surface, computed with the same
rate-optimal ILP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import schedule_loop
from repro.ddg.graph import Ddg
from repro.machine.presets import motivating_machine


@dataclass
class SweepPoint:
    """One (fp_units, mem_units) configuration's aggregate outcome."""

    fp_units: int
    mem_units: int
    scheduled: int
    mean_t: float
    mean_t_lb: float

    @property
    def mean_gap(self) -> float:
        return self.mean_t - self.mean_t_lb


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def point(self, fp_units: int, mem_units: int) -> SweepPoint:
        for candidate in self.points:
            if (candidate.fp_units, candidate.mem_units) == (
                fp_units, mem_units,
            ):
                return candidate
        raise KeyError((fp_units, mem_units))

    def monotone_in_fp(self) -> bool:
        """More FP units never increase the mean achieved T."""
        by_mem: Dict[int, List[SweepPoint]] = {}
        for point in self.points:
            by_mem.setdefault(point.mem_units, []).append(point)
        for group in by_mem.values():
            group.sort(key=lambda p: p.fp_units)
            for earlier, later in zip(group, group[1:]):
                if later.mean_t > earlier.mean_t + 1e-9:
                    return False
        return True

    def render(self) -> str:
        lines = [
            "E19 — machine-sensitivity sweep",
            f"{'FP':>3} {'MEM':>4} {'scheduled':>10} {'mean T':>8} "
            f"{'mean T_lb':>10} {'gap':>6}",
        ]
        for point in self.points:
            lines.append(
                f"{point.fp_units:>3} {point.mem_units:>4} "
                f"{point.scheduled:>10} {point.mean_t:>8.2f} "
                f"{point.mean_t_lb:>10.2f} {point.mean_gap:>6.2f}"
            )
        return "\n".join(lines)


def fp_mem_sweep(
    loops: List[Ddg],
    fp_range: Tuple[int, ...] = (1, 2, 3),
    mem_range: Tuple[int, ...] = (1, 2),
    backend: str = "auto",
    time_limit_per_t: Optional[float] = 5.0,
    max_extra: int = 10,
) -> SweepResult:
    """Sweep motivating-machine unit counts over a corpus."""
    result = SweepResult()
    for mem_units in mem_range:
        for fp_units in fp_range:
            machine = motivating_machine(
                fp_units=fp_units, mem_units=mem_units
            )
            achieved: List[int] = []
            lower: List[int] = []
            for ddg in loops:
                outcome = schedule_loop(
                    ddg, machine, backend=backend,
                    time_limit_per_t=time_limit_per_t,
                    max_extra=max_extra,
                )
                if outcome.achieved_t is None:
                    continue
                achieved.append(outcome.achieved_t)
                lower.append(outcome.bounds.t_lb)
            count = len(achieved)
            result.points.append(SweepPoint(
                fp_units=fp_units,
                mem_units=mem_units,
                scheduled=count,
                mean_t=sum(achieved) / count if count else float("nan"),
                mean_t_lb=sum(lower) / count if count else float("nan"),
            ))
    return result
