"""E10: ILP vs iterative modulo scheduling vs no pipelining.

The paper argues (and [9] measured, for clean pipelines) that the ILP's
initiation intervals dominate heuristic modulo scheduling: the ILP is
rate-optimal, so ``T_ilp <= II_heuristic`` on every loop both complete,
and both should beat running iterations back-to-back.  This harness
reproduces that *shape* for unclean machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines import (
    iterative_modulo_schedule,
    list_schedule,
    slack_modulo_schedule,
)
from repro.core import schedule_loop, verify_schedule
from repro.ddg.graph import Ddg
from repro.machine import Machine


@dataclass
class LoopComparison:
    """Per-loop initiation intervals under the three schedulers."""

    loop_name: str
    num_ops: int
    t_lb: int
    ilp_t: Optional[int]
    heuristic_ii: Optional[int]
    slack_ii: Optional[int]
    sequential_ii: int

    @property
    def heuristic_gap(self) -> Optional[int]:
        """Cycles per iteration the heuristic loses to the ILP."""
        if self.ilp_t is None or self.heuristic_ii is None:
            return None
        return self.heuristic_ii - self.ilp_t

    @property
    def slack_gap(self) -> Optional[int]:
        if self.ilp_t is None or self.slack_ii is None:
            return None
        return self.slack_ii - self.ilp_t

    @property
    def pipelining_speedup(self) -> Optional[float]:
        if self.ilp_t is None:
            return None
        return self.sequential_ii / self.ilp_t


@dataclass
class Comparison:
    """Corpus-level comparison summary."""

    rows: List[LoopComparison] = field(default_factory=list)

    @property
    def both_completed(self) -> List[LoopComparison]:
        return [
            r for r in self.rows
            if r.ilp_t is not None and r.heuristic_ii is not None
        ]

    @property
    def ilp_never_worse(self) -> bool:
        return all(
            r.heuristic_gap >= 0
            and (r.slack_gap is None or r.slack_gap >= 0)
            for r in self.both_completed
        )

    @property
    def heuristic_losses(self) -> int:
        return sum(1 for r in self.both_completed if r.heuristic_gap > 0)

    @property
    def mean_speedup_vs_sequential(self) -> float:
        speedups = [
            r.pipelining_speedup for r in self.rows
            if r.pipelining_speedup is not None
        ]
        return sum(speedups) / len(speedups) if speedups else 0.0

    def render(self) -> str:
        done = self.both_completed
        lines = [
            "E10 — ILP vs heuristic vs sequential",
            f"loops compared: {len(done)} / {len(self.rows)}",
            f"ILP never worse than heuristic: {self.ilp_never_worse}",
            f"loops where the heuristic loses cycles: "
            f"{self.heuristic_losses}",
            f"mean speedup of ILP pipelining over sequential: "
            f"{self.mean_speedup_vs_sequential:.2f}x",
        ]
        gaps = [r.heuristic_gap for r in done]
        if gaps:
            lines.append(
                f"heuristic gap (cycles/iter): mean "
                f"{sum(gaps) / len(gaps):.2f}, max {max(gaps)}"
            )
        return "\n".join(lines)


def run_compare(
    loops: List[Ddg],
    machine: Machine,
    backend: str = "auto",
    time_limit_per_t: Optional[float] = 10.0,
    max_extra: int = 8,
) -> Comparison:
    """Schedule every loop three ways and collect the IIs."""
    comparison = Comparison()
    for ddg in loops:
        result = schedule_loop(
            ddg,
            machine,
            backend=backend,
            time_limit_per_t=time_limit_per_t,
            max_extra=max_extra,
        )
        if result.schedule is not None:
            verify_schedule(result.schedule)
        heuristic = iterative_modulo_schedule(ddg, machine)
        if heuristic.schedule is not None:
            verify_schedule(heuristic.schedule)
        slack = slack_modulo_schedule(ddg, machine)
        if slack.schedule is not None:
            verify_schedule(slack.schedule)
        sequential = list_schedule(ddg, machine)
        comparison.rows.append(
            LoopComparison(
                loop_name=ddg.name,
                num_ops=ddg.num_ops,
                t_lb=result.bounds.t_lb,
                ilp_t=result.achieved_t,
                heuristic_ii=heuristic.achieved_ii,
                slack_ii=slack.achieved_ii,
                sequential_ii=sequential.effective_ii,
            )
        )
    return comparison
