"""Experiment harnesses reproducing the paper's tables and figures.

Each module maps to rows of the DESIGN.md experiment index:

* :mod:`repro.experiments.motivating` — §2 artifacts: Figure 1 (DDG),
  Table 1 (Schedule A, run-time mapping only), Table 2 (Schedule B),
  Figure 2 (stage usage), Figure 3 (T/K/A), Figure 4 (circular arcs).
* :mod:`repro.experiments.table4` — scheduling-performance buckets over a
  loop corpus (loops found at T_lb, T_lb+1, ...).
* :mod:`repro.experiments.table5` — solver-effort distribution under the
  paper's 10 s / 30 s budgets.
* :mod:`repro.experiments.compare` — ILP vs iterative modulo scheduling
  vs no-pipelining (E10).
* :mod:`repro.experiments.ablation` — counting-only vs coloring (E11)
  and hazard-model on/off (E12).

The pytest benchmarks under ``benchmarks/`` are thin wrappers over these
functions, so the same code drives the CLI, the benches and EXPERIMENTS.md.
"""
