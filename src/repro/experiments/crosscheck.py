"""Four-way cross-validation of the whole stack.

For each loop, four independent paths compute or bound the optimal
initiation interval:

1. the ILP on HiGHS,
2. the ILP on the built-in simplex/branch-and-bound,
3. the exhaustive enumeration (:mod:`repro.enumerative`),
4. the heuristics (upper bounds only).

The invariant lattice asserted per loop:

    T_lb <= T(1) = T(2) = T(3) <= II(heuristics) <= II(sequential)

plus every produced schedule passing the static verifier *and* the
replay simulator.  One failing loop is a bug somewhere in the stack; the
report names the disagreeing pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines import (
    iterative_modulo_schedule,
    list_schedule,
    slack_modulo_schedule,
)
from repro.core import schedule_loop, verify_schedule
from repro.ddg.graph import Ddg
from repro.enumerative import enumerative_schedule_loop
from repro.machine import Machine
from repro.sim import simulate


@dataclass
class CrossCheckRow:
    loop_name: str
    t_lb: int
    highs_t: Optional[int]
    bnb_t: Optional[int]
    enum_t: Optional[int]
    ims_ii: Optional[int]
    slack_ii: Optional[int]
    sequential_ii: int
    problems: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.problems


@dataclass
class CrossCheckReport:
    rows: List[CrossCheckRow] = field(default_factory=list)

    @property
    def all_consistent(self) -> bool:
        return all(row.consistent for row in self.rows)

    def problems(self) -> List[str]:
        out = []
        for row in self.rows:
            out.extend(f"{row.loop_name}: {p}" for p in row.problems)
        return out

    def render(self) -> str:
        lines = [
            f"cross-check: {len(self.rows)} loops, "
            f"{'ALL CONSISTENT' if self.all_consistent else 'PROBLEMS'}",
        ]
        lines.extend("  " + p for p in self.problems())
        return "\n".join(lines)


def cross_check(
    loops: List[Ddg],
    machine: Machine,
    time_limit_per_t: Optional[float] = 10.0,
    max_extra: int = 8,
) -> CrossCheckReport:
    """Run the four paths on every loop and collect inconsistencies."""
    report = CrossCheckReport()
    for ddg in loops:
        problems: List[str] = []
        results = {}
        for backend in ("highs", "bnb"):
            outcome = schedule_loop(
                ddg, machine, backend=backend,
                time_limit_per_t=time_limit_per_t, max_extra=max_extra,
            )
            results[backend] = outcome
            if outcome.schedule is not None:
                try:
                    verify_schedule(outcome.schedule)
                except Exception as exc:  # pragma: no cover - stack bug
                    problems.append(f"{backend} schedule invalid: {exc}")
                sim = simulate(outcome.schedule, iterations=6)
                if not sim.ok:
                    problems.append(
                        f"{backend} schedule fails replay: "
                        f"{sim.first_violation()}"
                    )
        enumerated = enumerative_schedule_loop(
            ddg, machine, time_limit_per_t=time_limit_per_t,
            max_extra=max_extra,
        )
        ims = iterative_modulo_schedule(ddg, machine)
        slack = slack_modulo_schedule(ddg, machine)
        sequential = list_schedule(ddg, machine)

        highs_t = results["highs"].achieved_t
        bnb_t = results["bnb"].achieved_t
        t_lb = results["highs"].bounds.t_lb
        exact = [t for t in (highs_t, bnb_t, enumerated.achieved_t)
                 if t is not None]
        if len(set(exact)) > 1:
            problems.append(
                f"exact methods disagree: highs={highs_t} bnb={bnb_t} "
                f"enum={enumerated.achieved_t}"
            )
        if exact:
            best = exact[0]
            if best < t_lb:
                problems.append(f"achieved T {best} below T_lb {t_lb}")
            for label, ii in (("ims", ims.achieved_ii),
                              ("slack", slack.achieved_ii)):
                if ii is not None and ii < best:
                    problems.append(
                        f"heuristic {label} beat the optimum: {ii} < {best}"
                    )
            if sequential.effective_ii < best:
                problems.append(
                    f"sequential II {sequential.effective_ii} below "
                    f"optimum {best}"
                )
        report.rows.append(CrossCheckRow(
            loop_name=ddg.name,
            t_lb=t_lb,
            highs_t=highs_t,
            bnb_t=bnb_t,
            enum_t=enumerated.achieved_t,
            ims_ii=ims.achieved_ii,
            slack_ii=slack.achieved_ii,
            sequential_ii=sequential.effective_ii,
            problems=problems,
        ))
    return report
