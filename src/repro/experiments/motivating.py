"""The paper's §2 motivating example, end to end (experiments E1–E6).

Reconstructs and verifies every §2 claim:

* ``T_dep = 2`` (self-loop on ``i2``), ``T_res = 3``, so ``T_lb = 3``;
* at ``T = 3`` the aggregate (counting-only) ILP **is** feasible and the
  resulting schedule executes correctly under *run-time* FU selection —
  that is **Schedule A** (Table 1) — but no fixed FU assignment exists
  (the overlap graph of the three FP ops is a triangle on two units);
* the full scheduling+mapping ILP proves ``T = 3`` infeasible and finds a
  fixed-assignment schedule at ``T = 4`` — **Schedule B** (Table 2),
  whose ``K = [0,0,0,1,1,2]`` matches the paper's Figure 3;
* Figure 2's per-stage modulo usage tables and Figure 4's circular-arc
  overlap structure are printed from the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import (
    Formulation,
    FormulationOptions,
    MappingError,
    Schedule,
    lower_bounds,
    schedule_loop,
    verify_schedule,
)
from repro.core.schedule import greedy_mapping
from repro.ddg.kernels import motivating_example
from repro.ddg.render import ascii_ddg
from repro.machine import Machine
from repro.machine.presets import motivating_machine
from repro.sim import simulate


@dataclass
class MotivatingArtifacts:
    """Everything §2 exhibits, produced by :func:`run`."""

    machine: Machine
    t_dep: int
    t_res: int
    t_lb: int
    schedule_a: Optional[Schedule]          # counting-only, T = 3
    schedule_a_dynamic_ok: bool             # Table 1: works w/ run-time map
    schedule_a_fixed_mappable: bool         # ... but has no fixed mapping
    t3_with_mapping_infeasible: bool        # full ILP rejects T = 3
    schedule_b: Schedule                    # Table 2 / Figure 3, T = 4
    rate_optimal_proven: bool

    @property
    def consistent_with_paper(self) -> bool:
        """The §2 storyline holds end to end."""
        return (
            self.t_dep == 2
            and self.t_lb == 3
            and self.schedule_a is not None
            and self.schedule_a_dynamic_ok
            and not self.schedule_a_fixed_mappable
            and self.t3_with_mapping_infeasible
            and self.schedule_b.t_period == 4
            and self.rate_optimal_proven
        )


def run(backend: str = "auto") -> MotivatingArtifacts:
    """Compute all §2 artifacts (deterministic; < 1 s with HiGHS)."""
    machine = motivating_machine()
    ddg = motivating_example()
    bounds = lower_bounds(ddg, machine)

    # Schedule A: counting-only relaxation at T = T_lb = 3  (§4.1 alone).
    counting = Formulation(
        ddg, machine, bounds.t_lb,
        FormulationOptions(mapping=False, objective="min_sum_t"),
    )
    counting_solution = counting.solve(backend=backend)
    schedule_a = None
    dynamic_ok = False
    fixed_mappable = False
    if counting_solution.status.has_solution:
        schedule_a = counting.extract(counting_solution, require_mapping=False)
        dynamic_ok = simulate(
            schedule_a, iterations=12, dynamic_mapping=True
        ).ok
        try:
            greedy_mapping(ddg, machine, schedule_a.starts, schedule_a.t_period)
            fixed_mappable = True
        except MappingError:
            fixed_mappable = False

    # Full scheduling + mapping ILP, sweeping T from T_lb.
    result = schedule_loop(
        ddg, machine, backend=backend, objective="min_sum_t"
    )
    assert result.schedule is not None
    verify_schedule(result.schedule)
    t3_infeasible = any(
        a.t_period == bounds.t_lb and a.status == "infeasible"
        for a in result.attempts
    )
    return MotivatingArtifacts(
        machine=machine,
        t_dep=bounds.t_dep,
        t_res=bounds.t_res,
        t_lb=bounds.t_lb,
        schedule_a=schedule_a,
        schedule_a_dynamic_ok=dynamic_ok,
        schedule_a_fixed_mappable=fixed_mappable,
        t3_with_mapping_infeasible=t3_infeasible,
        schedule_b=result.schedule,
        rate_optimal_proven=result.is_rate_optimal_proven,
    )


def circular_arcs(
    schedule: Schedule, fu_name: str
) -> Dict[int, List[Tuple[int, int]]]:
    """Figure 4 data: per-op occupied (stage, slot) cells on ``fu_name``."""
    arcs: Dict[int, List[Tuple[int, int]]] = {}
    machine = schedule.machine
    for op in schedule.ddg.ops:
        if machine.op_class(op.op_class).fu_type != fu_name:
            continue
        table = machine.reservation_for(op.op_class)
        offset = schedule.starts[op.index] % schedule.t_period
        arcs[op.index] = [
            (stage, (offset + cycle) % schedule.t_period)
            for stage, cycle in table.usage_offsets()
        ]
    return arcs


def overlap_edges(
    schedule: Schedule, fu_name: str
) -> List[Tuple[int, int]]:
    """Pairs of ops on ``fu_name`` whose arcs intersect (must differ in color)."""
    arcs = circular_arcs(schedule, fu_name)
    indices = sorted(arcs)
    edges = []
    for pos, i in enumerate(indices):
        cells_i = set(arcs[i])
        for j in indices[pos + 1:]:
            if cells_i & set(arcs[j]):
                edges.append((i, j))
    return edges


def render_arcs(schedule: Schedule, fu_name: str) -> str:
    """Text rendering of the Figure 4 circular-arc instance."""
    arcs = circular_arcs(schedule, fu_name)
    lines = [
        f"circular arcs on {fu_name} (period {schedule.t_period}); "
        "overlapping ops need distinct units:"
    ]
    for op_index, cells in sorted(arcs.items()):
        op = schedule.ddg.ops[op_index]
        cell_text = ", ".join(f"(s{s + 1},t{t})" for s, t in sorted(cells))
        color = schedule.colors.get(op_index)
        unit = f" -> {fu_name}{color}" if color is not None else ""
        lines.append(f"  {op.name}: {cell_text}{unit}")
    edges = overlap_edges(schedule, fu_name)
    names = [
        f"{schedule.ddg.ops[i].name}-{schedule.ddg.ops[j].name}"
        for i, j in edges
    ]
    lines.append("  overlap edges: " + (", ".join(names) or "(none)"))
    return "\n".join(lines)


def report(backend: str = "auto") -> str:
    """The full §2 narrative as printable text (CLI `motivating`)."""
    artifacts = run(backend=backend)
    machine = artifacts.machine
    ddg = artifacts.schedule_b.ddg
    sections = [
        "== Figure 1: motivating DDG and machine ==",
        ascii_ddg(ddg, machine),
        machine.render(),
        machine.reservation_for("fadd").render("FP reservation table"),
        "",
        f"T_dep={artifacts.t_dep}  T_res={artifacts.t_res}  "
        f"T_lb={artifacts.t_lb}",
        "",
        "== Table 1: Schedule A (T=3, run-time FU choice only) ==",
    ]
    if artifacts.schedule_a is not None:
        sections += [
            artifacts.schedule_a.render_kernel(),
            f"executes with dynamic mapping: {artifacts.schedule_a_dynamic_ok}",
            f"admits a fixed FU assignment: "
            f"{artifacts.schedule_a_fixed_mappable}",
        ]
    sections += [
        "",
        f"full ILP at T=3 infeasible: {artifacts.t3_with_mapping_infeasible}",
        "",
        "== Table 2 / Figure 3: Schedule B (T=4, fixed mapping) ==",
        artifacts.schedule_b.render_kernel(),
        artifacts.schedule_b.render_tka(),
        "",
        "== Figure 2: per-unit modulo stage usage ==",
        artifacts.schedule_b.render_usage("FP"),
        "",
        "== Figure 4: circular-arc mapping ==",
        render_arcs(artifacts.schedule_b, "FP"),
        "",
        f"rate-optimality proven: {artifacts.rate_optimal_proven}",
        f"all §2 claims hold: {artifacts.consistent_with_paper}",
    ]
    return "\n".join(sections)
