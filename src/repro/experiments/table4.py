"""Table 4: scheduling performance over a loop corpus (experiment E8).

The paper reports, for the loops whose ILP completed within budget, how
many achieved ``T = T_lb``, ``T = T_lb + 2``, ``T = T_lb + 4`` and the
mean DDG size per bucket:

    ===========  ==================  ================
    # of loops   initiation interval  mean nodes/DDG
    735          T = T_lb             6
    20           T = T_lb + 2         16
    11           T = T_lb + 4         17
    ===========  ==================  ================

(the remaining loops of the 1066 did not finish within the time budget).
:func:`run_table4` computes the same buckets for any corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import schedule_loop
from repro.core.scheduler import SchedulingResult
from repro.ddg.graph import Ddg
from repro.machine import Machine

#: The published Table 4 rows (delta-from-T_lb -> (#loops, mean nodes)).
PAPER_TABLE4: Dict[int, tuple] = {0: (735, 6), 2: (20, 16), 4: (11, 17)}


@dataclass
class Bucket:
    """One Table 4 row."""

    delta: int
    loops: int = 0
    total_nodes: int = 0

    @property
    def mean_nodes(self) -> float:
        return self.total_nodes / self.loops if self.loops else 0.0


@dataclass
class Table4:
    """Bucketed scheduling performance for a corpus."""

    buckets: Dict[int, Bucket] = field(default_factory=dict)
    unscheduled: int = 0
    unscheduled_nodes: int = 0
    results: List[SchedulingResult] = field(default_factory=list)

    @property
    def scheduled(self) -> int:
        return sum(b.loops for b in self.buckets.values())

    @property
    def fraction_at_t_lb(self) -> float:
        if not self.scheduled:
            return 0.0
        at_lb = self.buckets.get(0, Bucket(0)).loops
        return at_lb / self.scheduled

    def add(self, result: SchedulingResult, num_nodes: int) -> None:
        self.results.append(result)
        delta = result.delta_from_lb
        if delta is None:
            self.unscheduled += 1
            self.unscheduled_nodes += num_nodes
            return
        bucket = self.buckets.setdefault(delta, Bucket(delta))
        bucket.loops += 1
        bucket.total_nodes += num_nodes

    def render(self) -> str:
        lines = [
            "Table 4 — scheduling performance",
            f"{'# loops':>8}  {'initiation interval':<22}  mean nodes/DDG",
        ]
        for delta in sorted(self.buckets):
            bucket = self.buckets[delta]
            label = "T = T_lb" if delta == 0 else f"T = T_lb + {delta}"
            lines.append(
                f"{bucket.loops:>8}  {label:<22}  {bucket.mean_nodes:.1f}"
            )
        if self.unscheduled:
            mean = self.unscheduled_nodes / self.unscheduled
            lines.append(
                f"{self.unscheduled:>8}  {'(not within budget)':<22}  {mean:.1f}"
            )
        lines.append(
            f"scheduled loops at T_lb: {100 * self.fraction_at_t_lb:.1f}% "
            f"(paper: {100 * 735 / 766:.1f}%)"
        )
        return "\n".join(lines)


def run_table4(
    loops: List[Ddg],
    machine: Machine,
    backend: str = "auto",
    time_limit_per_t: Optional[float] = 10.0,
    max_extra: int = 8,
    objective: str = "feasibility",
    jobs: int = 1,
) -> Table4:
    """Schedule every loop and bucket the outcomes.

    ``jobs > 1`` fans the corpus out over the multiprocess batch runner
    (:func:`repro.parallel.run_batch`); bucketing is identical either
    way because both paths run the same per-attempt body.
    """
    table = Table4()
    if jobs > 1:
        from repro.parallel import run_batch

        report = run_batch(
            loops,
            machine,
            backend=backend,
            objective=objective,
            time_limit_per_t=time_limit_per_t,
            max_extra=max_extra,
            jobs=jobs,
        )
        for entry in report.entries:
            if entry.result is None:
                raise RuntimeError(
                    f"loop {entry.name!r} failed in batch: {entry.error}"
                )
            table.add(entry.result, entry.num_ops)
        return table
    for ddg in loops:
        result = schedule_loop(
            ddg,
            machine,
            backend=backend,
            objective=objective,
            time_limit_per_t=time_limit_per_t,
            max_extra=max_extra,
        )
        table.add(result, ddg.num_ops)
    return table
