"""Design ablations (experiments E11, E12).

E11 — *counting vs coloring*: §4.1's aggregate capacity constraints admit
schedules that no fixed FU assignment can realize; §4.2's coloring closes
the gap.  The harness counts, over a corpus, how often the counting-only
relaxation claims a smaller T than the full formulation achieves, and
verifies every gap by exhibiting the greedy mapper's failure.

E12 — *hazard model on/off*: the same loops scheduled on the unclean
machine vs an idealized variant whose reservation tables are replaced by
clean pipelines of equal span.  The delta isolates how many cycles per
iteration the structural hazards themselves cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core import (
    Formulation,
    FormulationOptions,
    MappingError,
    lower_bounds,
    schedule_loop,
)
from repro.core.bounds import modulo_feasible_t
from repro.core.schedule import greedy_mapping
from repro.ddg.graph import Ddg
from repro.machine import Machine, ReservationTable


def cleaned_variant(machine: Machine) -> Machine:
    """The machine with every reservation table idealized to a clean
    pipeline of the same span (same latencies, same FU counts)."""
    clean = Machine(f"{machine.name}-idealized")
    for fu in machine.fu_types.values():
        clean.add_fu_type(
            fu.name, fu.count, ReservationTable.clean(fu.table.length),
            cost=fu.cost,
        )
    for cls in machine.op_classes.values():
        table = None
        if cls.table is not None:
            table = ReservationTable.clean(cls.table.length)
        clean.add_op_class(cls.name, cls.fu_type, cls.latency, table)
    return clean


@dataclass
class CountingVsColoring:
    """E11 outcome for one loop."""

    loop_name: str
    t_counting: Optional[int]
    t_full: Optional[int]
    gap_witnessed: bool  # counting schedule exists but is unmappable

    @property
    def has_gap(self) -> bool:
        return (
            self.t_counting is not None
            and self.t_full is not None
            and self.t_full > self.t_counting
        )


def counting_vs_coloring(
    loops: List[Ddg],
    machine: Machine,
    backend: str = "auto",
    time_limit_per_t: Optional[float] = 10.0,
    max_extra: int = 8,
) -> List[CountingVsColoring]:
    """Run E11 over a corpus."""
    rows = []
    for ddg in loops:
        counting = schedule_loop(
            ddg, machine, backend=backend, mapping=False,
            time_limit_per_t=time_limit_per_t, max_extra=max_extra,
        )
        full = schedule_loop(
            ddg, machine, backend=backend, mapping=None,
            time_limit_per_t=time_limit_per_t, max_extra=max_extra,
        )
        witnessed = False
        if (
            counting.schedule is not None
            and full.achieved_t is not None
            and counting.schedule.t_period < full.achieved_t
        ):
            # The counting-only schedule at the smaller T must be
            # unmappable, otherwise the full ILP would have found it.
            try:
                greedy_mapping(
                    ddg, machine,
                    counting.schedule.starts, counting.schedule.t_period,
                )
            except MappingError:
                witnessed = True
        rows.append(
            CountingVsColoring(
                loop_name=ddg.name,
                t_counting=counting.achieved_t,
                t_full=full.achieved_t,
                gap_witnessed=witnessed,
            )
        )
    return rows


@dataclass
class HazardAblation:
    """E12 outcome for one loop."""

    loop_name: str
    t_lb_unclean: int
    t_lb_clean: int
    t_unclean: Optional[int]
    t_clean: Optional[int]

    @property
    def hazard_cost(self) -> Optional[int]:
        """Cycles per iteration attributable to structural hazards."""
        if self.t_unclean is None or self.t_clean is None:
            return None
        return self.t_unclean - self.t_clean


@dataclass
class HazardAblationSummary:
    rows: List[HazardAblation] = field(default_factory=list)

    @property
    def completed(self) -> List[HazardAblation]:
        return [r for r in self.rows if r.hazard_cost is not None]

    @property
    def mean_cost(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return sum(r.hazard_cost for r in done) / len(done)

    @property
    def never_negative(self) -> bool:
        """Hazards can only hurt: T_unclean >= T_clean on every loop."""
        return all(r.hazard_cost >= 0 for r in self.completed)

    def render(self) -> str:
        done = self.completed
        worst = max((r.hazard_cost for r in done), default=0)
        return "\n".join([
            "E12 — structural-hazard ablation",
            f"loops compared: {len(done)} / {len(self.rows)}",
            f"mean hazard cost: {self.mean_cost:.2f} cycles/iteration",
            f"max hazard cost: {worst}",
            f"hazards never helped (sanity): {self.never_negative}",
        ])


def hazard_ablation(
    loops: List[Ddg],
    machine: Machine,
    backend: str = "auto",
    time_limit_per_t: Optional[float] = 10.0,
    max_extra: int = 8,
) -> HazardAblationSummary:
    """Run E12 over a corpus."""
    idealized = cleaned_variant(machine)
    summary = HazardAblationSummary()
    for ddg in loops:
        unclean = schedule_loop(
            ddg, machine, backend=backend,
            time_limit_per_t=time_limit_per_t, max_extra=max_extra,
        )
        clean = schedule_loop(
            ddg, idealized, backend=backend,
            time_limit_per_t=time_limit_per_t, max_extra=max_extra,
        )
        summary.rows.append(
            HazardAblation(
                loop_name=ddg.name,
                t_lb_unclean=unclean.bounds.t_lb,
                t_lb_clean=clean.bounds.t_lb,
                t_unclean=unclean.achieved_t,
                t_clean=clean.achieved_t,
            )
        )
    return summary
