"""Finite-horizon replay of periodic schedules.

Instance ``(op i, iteration j)`` starts at absolute cycle
``j * T + t_i`` and stamps its reservation table onto one physical FU.
With ``dynamic_mapping=False`` the FU is the schedule's fixed color; with
``dynamic_mapping=True`` a first-fit copy is chosen per instance, the
run-time FU selection the earlier clean-pipeline ILP work [6, 9]
implicitly assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.schedule import Schedule


@dataclass
class SimReport:
    """Result of a finite simulation."""

    ok: bool
    iterations: int
    cycles: int
    violations: List[str] = field(default_factory=list)
    #: per-instance FU choices actually used: (op index, iteration) -> copy
    instance_units: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def achieved_ii(self) -> Optional[float]:
        """Average initiation interval over the simulated window.

        Converges to the schedule's ``T`` as ``iterations`` grows (the
        constant prolog/epilog overhead is amortized away).
        """
        if self.iterations < 1:
            return None
        return float(self.cycles) / self.iterations

    def first_violation(self) -> Optional[str]:
        return self.violations[0] if self.violations else None


def simulate(
    schedule: Schedule,
    iterations: int = 8,
    dynamic_mapping: bool = False,
    stop_at_first: bool = False,
) -> SimReport:
    """Replay ``iterations`` loop iterations and collect violations.

    Checks, per instance:

    * every dependence ``(i -> j, m)``: the consumer instance of
      iteration ``q`` must start no earlier than ``d_i`` cycles after the
      producer instance of iteration ``q - m`` (skipped when ``q < m``);
    * structural hazards: the stamped reservation cells of instances
      sharing one physical unit never collide.
    """
    ddg = schedule.ddg
    machine = schedule.machine
    t_period = schedule.t_period
    violations: List[str] = []
    # occupancy[(fu_name, copy)][(stage, absolute_cycle)] = (op, iteration)
    occupancy: Dict[Tuple[str, int], Dict[Tuple[int, int], Tuple[int, int]]] = {}
    instance_units: Dict[Tuple[int, int], int] = {}

    separations = ddg.dep_latencies(machine)
    start_of = lambda i, q: q * t_period + schedule.starts[i]  # noqa: E731

    # Dependences.
    for dep, separation in zip(ddg.deps, separations):
        for q in range(dep.distance, iterations):
            consumer = start_of(dep.dst, q)
            producer = start_of(dep.src, q - dep.distance)
            if consumer < producer + separation:
                violations.append(
                    f"iteration {q}: {ddg.ops[dep.dst].name} starts at "
                    f"{consumer} before {ddg.ops[dep.src].name} "
                    f"(iter {q - dep.distance}) allows at "
                    f"{producer + separation}"
                )
                if stop_at_first:
                    return _report(False, iterations, schedule, violations,
                                   instance_units)

    # Structural hazards.  Instances are placed in absolute start-time
    # order: for dynamic mapping this makes first-fit optimal on
    # interval-like conflict structures (earlier instances never depend
    # on later choices), and for fixed mapping order is irrelevant.
    instances = sorted(
        ((start_of(op.index, q), op.index, q)
         for q in range(iterations) for op in ddg.ops),
    )
    for base, op_index, q in instances:
        op = ddg.ops[op_index]
        fu = machine.fu_type_of(op.op_class)
        table = machine.reservation_for(op.op_class)
        cells = [
            (stage, base + cycle) for stage, cycle in table.usage_offsets()
        ]
        if dynamic_mapping:
            copy = _first_fit(occupancy, fu.name, fu.count, cells)
        else:
            copy = schedule.colors.get(op.index)
        if copy is None:
            violations.append(
                f"iteration {q}: no free {fu.name} unit for "
                f"{op.name} at cycle {base}"
                if dynamic_mapping
                else f"op {op.name} has no fixed FU assignment"
            )
            if stop_at_first:
                return _report(False, iterations, schedule, violations,
                               instance_units)
            continue
        instance_units[(op.index, q)] = copy
        board = occupancy.setdefault((fu.name, copy), {})
        for cell in cells:
            holder = board.get(cell)
            if holder is not None:
                other_op, other_q = holder
                violations.append(
                    f"hazard on {fu.name}#{copy} stage {cell[0] + 1} "
                    f"cycle {cell[1]}: {op.name} (iter {q}) vs "
                    f"{ddg.ops[other_op].name} (iter {other_q})"
                )
                if stop_at_first:
                    return _report(False, iterations, schedule,
                                   violations, instance_units)
            else:
                board[cell] = (op.index, q)

    return _report(not violations, iterations, schedule, violations,
                   instance_units)


def _first_fit(
    occupancy: Dict[Tuple[str, int], Dict[Tuple[int, int], Tuple[int, int]]],
    fu_name: str,
    count: int,
    cells: List[Tuple[int, int]],
) -> Optional[int]:
    for copy in range(count):
        board = occupancy.setdefault((fu_name, copy), {})
        if all(cell not in board for cell in cells):
            return copy
    return None


def _report(ok, iterations, schedule, violations, instance_units) -> SimReport:
    cycles = (iterations - 1) * schedule.t_period + schedule.span
    return SimReport(
        ok=ok,
        iterations=iterations,
        cycles=cycles,
        violations=violations,
        instance_units=instance_units,
    )
