"""Functional replay: does the *scheduled* loop compute the right values?

Executes a software-pipelined schedule of a front-end-compiled loop at
its scheduled times, value by value, against a timed memory model:

* a load reads memory at its start cycle;
* a store's write becomes visible one cycle after its start (the
  1-cycle separation anti/output dependences enforce);
* a binop consumes producer-instance values resolved through the
  recorded :class:`repro.frontend.lower.OperandSource` descriptors
  (constants, invariant scalars, recurrence seeds for pre-loop
  instances).

Comparing the final memory against the sequential reference interpreter
(:mod:`repro.frontend.interp`) is the strongest end-to-end statement the
library makes: the dependence analysis, the ILP schedule and the code
model together preserve the loop's semantics, for *any* verified
schedule — including aggressively reordered ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.schedule import Schedule
from repro.frontend.errors import FrontendError
from repro.frontend.lower import CompiledLoop, OperandSource


@dataclass
class DataflowResult:
    """Final state after :func:`execute_dataflow`."""

    arrays: Dict[str, List[float]]
    #: Values computed per (op, iteration) — for debugging mismatches.
    values: Dict[Tuple[int, int], float]


def execute_dataflow(
    compiled: CompiledLoop,
    schedule: Schedule,
    arrays: Dict[str, List[float]],
    scalars: Dict[str, float],
    iterations: int,
) -> DataflowResult:
    """Replay ``iterations`` iterations of ``schedule`` functionally.

    ``arrays`` is deep-copied; ``scalars`` seeds loop-carried
    recurrences (the value "before" iteration 0) and loop invariants.
    """
    if schedule.ddg is not compiled.ddg:
        raise FrontendError(
            "schedule was built for a different DDG object than the "
            "compiled loop"
        )
    memory = {name: list(data) for name, data in arrays.items()}
    values: Dict[Tuple[int, int], float] = {}
    t_period = schedule.t_period

    # Events: loads/binops evaluate at start; stores commit at start+1.
    # Writes at time t are visible to reads at time >= t, so commits
    # sort before evaluations at equal timestamps.
    events = []
    for iteration in range(iterations):
        for op in compiled.ddg.ops:
            sem = compiled.semantics[op.index]
            start = iteration * t_period + schedule.starts[op.index]
            when = start + 1 if sem.kind == "store" else start
            order = 0 if sem.kind == "store" else 1
            events.append((when, order, op.index, iteration))
    events.sort()

    for _, _, op_index, iteration in events:
        sem = compiled.semantics[op_index]
        if sem.kind == "load":
            values[(op_index, iteration)] = _read(
                memory, sem.array, iteration + sem.offset
            )
        elif sem.kind == "binop":
            left = _operand(sem.operands[0], values, scalars, iteration)
            right = _operand(sem.operands[1], values, scalars, iteration)
            values[(op_index, iteration)] = _apply(
                sem.operator, left, right
            )
        elif sem.kind == "store":
            value = _operand(sem.operands[0], values, scalars, iteration)
            _write(memory, sem.array, iteration + sem.offset, value)
            values[(op_index, iteration)] = value
        else:  # pragma: no cover - lowering only emits these kinds
            raise FrontendError(f"unknown op kind {sem.kind!r}")
    return DataflowResult(arrays=memory, values=values)


def _operand(
    source: OperandSource,
    values: Dict[Tuple[int, int], float],
    scalars: Dict[str, float],
    iteration: int,
) -> float:
    if source.kind == "const":
        return source.value
    if source.kind == "scalar":
        try:
            return scalars[source.name]
        except KeyError:
            raise FrontendError(
                f"scalar {source.name!r} needs a seed value"
            ) from None
    if source.kind == "carried_const":
        if iteration == 0:
            return scalars.get(source.name, 0.0)
        return source.value
    if source.kind == "op":
        producer_iteration = iteration - source.distance
        if producer_iteration < 0:
            # Before the recurrence warms up: the scalar's seed.
            return scalars.get(source.name, 0.0)
        return values[(source.op_index, producer_iteration)]
    raise FrontendError(f"unknown operand kind {source.kind!r}")


def _apply(operator: str, left: float, right: float) -> float:
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        return left / right if right != 0 else 0.0
    raise FrontendError(f"unknown operator {operator!r}")


def _read(memory, array: str, index: int) -> float:
    data = memory.setdefault(array, [])
    if 0 <= index < len(data):
        return data[index]
    return 0.0


def _write(memory, array: str, index: int, value: float) -> None:
    data = memory.setdefault(array, [])
    if 0 <= index < len(data):
        data[index] = value
