"""Cycle-accurate execution substrate.

Replays a software-pipelined schedule for a finite number of iterations
against the machine's reservation tables, checking structural hazards and
dependences at *absolute* cycle granularity (no modulo arithmetic — an
independent cross-check of the modulo reasoning in :mod:`repro.core`).

The ``dynamic_mapping`` mode re-chooses a physical FU per *instance*
(run-time FU selection), which is exactly the regime in which the
paper's "Schedule A" is valid even though no fixed per-instruction
assignment exists.  Comparing the two modes reproduces the paper's §2
motivation (experiment E2 / Table 1).
"""

from repro.sim.executor import SimReport, simulate
from repro.sim.interlocked import (
    InterlockedReport,
    fixed_assignment_cost,
    run_interlocked,
)

__all__ = [
    "InterlockedReport",
    "SimReport",
    "fixed_assignment_cost",
    "run_interlocked",
    "simulate",
]
