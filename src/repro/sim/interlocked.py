"""Greedy dynamic-issue execution (interlocked hardware).

The paper's §2 tension: "Schedule A" is invalid for *fixed* FU
assignment but executes fine when the hardware picks a unit per
instance at run time.  This module simulates exactly that hardware —
scoreboarded, in-order-per-iteration issue with run-time FU selection —
so the *cost of compile-time fixed assignment* can be measured.  On the
motivating example the greedy dynamic hardware sustains II = 3 where the
rate-optimal fixed schedule needs T = 4 (a 1 cycle/iteration gap).

Note the issue policy is *greedy* and therefore myopic: on some loops
it loses cycles to the optimal fixed schedule (only an optimal dynamic
policy would dominate everywhere); what is guaranteed is the envelope
``T_dep <= II_greedy <= sequential makespan``.

Each op instance issues at the earliest cycle at which

* all operand instances have satisfied their dependences, and
* some physical copy of its FU type has the op's entire reservation
  footprint free,

scanning iterations in order with a template priority (ops sorted by an
optional static schedule's start times, else DDG order).  The simulator
is exact: reservations are stamped cell by cell at absolute cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ddg.graph import Ddg
from repro.machine import Machine

#: Safety valve for the per-instance issue-slot scan.
_SCAN_LIMIT = 10_000


@dataclass
class InterlockedReport:
    """Result of :func:`run_interlocked`."""

    iterations: int
    #: start[(op, iteration)] -> absolute issue cycle
    starts: Dict[Tuple[int, int], int] = field(default_factory=dict)
    units: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def steady_ii(self) -> float:
        """Sustained initiation interval over the trailing half.

        Dynamic dataflow execution lets independent chains decouple (a
        free-running load streams ahead of a recurrence), so the loop's
        sustainable rate is the *slowest* op's initiation distance.
        """
        if self.iterations < 4:
            raise ValueError("need >= 4 iterations for a steady estimate")
        half = self.iterations // 2
        span = self.iterations - 1 - half
        ops = {op for op, _ in self.starts}
        return max(
            (self.starts[(op, self.iterations - 1)]
             - self.starts[(op, half)]) / span
            for op in ops
        )

    def makespan(self) -> int:
        return max(self.starts.values(), default=0)


def run_interlocked(
    ddg: Ddg,
    machine: Machine,
    iterations: int = 32,
    priority: Optional[List[int]] = None,
) -> InterlockedReport:
    """Execute ``iterations`` iterations on dynamic-issue hardware."""
    ddg.validate_against(machine)
    preference = priority if priority is not None else list(range(ddg.num_ops))
    if sorted(preference) != list(range(ddg.num_ops)):
        raise ValueError("priority must be a permutation of the ops")
    order = _topo_order(ddg, preference)
    separations = ddg.dep_latencies(machine)

    report = InterlockedReport(iterations=iterations)
    occupancy: Dict[Tuple[str, int], set] = {}
    footprints = [
        machine.reservation_for(op.op_class).usage_offsets()
        for op in ddg.ops
    ]

    for iteration in range(iterations):
        for op_index in order:
            ready = 0
            for dep, sep in zip(ddg.deps, separations):
                if dep.dst != op_index:
                    continue
                producer_iter = iteration - dep.distance
                if producer_iter < 0:
                    continue
                # The topological issue order guarantees every
                # distance-0 producer is already placed.
                producer_start = report.starts[(dep.src, producer_iter)]
                ready = max(ready, producer_start + sep)
            fu = machine.fu_type_of(ddg.ops[op_index].op_class)
            placed = False
            for cycle in range(ready, ready + _SCAN_LIMIT):
                for copy in range(fu.count):
                    board = occupancy.setdefault((fu.name, copy), set())
                    cells = [
                        (stage, cycle + offset)
                        for stage, offset in footprints[op_index]
                    ]
                    if any(cell in board for cell in cells):
                        continue
                    board.update(cells)
                    report.starts[(op_index, iteration)] = cycle
                    report.units[(op_index, iteration)] = copy
                    placed = True
                    break
                if placed:
                    break
            if not placed:  # pragma: no cover - scan limit is generous
                raise RuntimeError(
                    f"no issue slot within {_SCAN_LIMIT} cycles for "
                    f"{ddg.ops[op_index].name}"
                )
    return report


def _topo_order(ddg: Ddg, preference: List[int]) -> List[int]:
    """Topological order over intra-iteration edges, preferring the
    caller's priority among ready ops (heap-based Kahn)."""
    import heapq

    rank = {op: pos for pos, op in enumerate(preference)}
    indegree = [0] * ddg.num_ops
    for dep in ddg.deps:
        if dep.distance == 0:
            indegree[dep.dst] += 1
    heap = [
        (rank[i], i) for i in range(ddg.num_ops) if indegree[i] == 0
    ]
    heapq.heapify(heap)
    order: List[int] = []
    while heap:
        _, node = heapq.heappop(heap)
        order.append(node)
        for dep in ddg.deps:
            if dep.distance != 0 or dep.src != node:
                continue
            indegree[dep.dst] -= 1
            if indegree[dep.dst] == 0:
                heapq.heappush(heap, (rank[dep.dst], dep.dst))
    if len(order) != ddg.num_ops:
        raise ValueError(
            f"loop {ddg.name!r} has an intra-iteration dependence cycle"
        )
    return order


def fixed_assignment_cost(
    ddg: Ddg,
    machine: Machine,
    fixed_t: int,
    iterations: int = 32,
    priority: Optional[List[int]] = None,
) -> Tuple[float, float]:
    """(II_interlocked, cycles lost per iteration to fixed assignment).

    ``fixed_t`` is the rate-optimal fixed-mapping period (the paper's
    ILP result); the difference quantifies what compile-time FU binding
    gives up relative to run-time selection on this loop.
    """
    report = run_interlocked(ddg, machine, iterations=iterations,
                             priority=priority)
    dynamic_ii = report.steady_ii
    return dynamic_ii, fixed_t - dynamic_ii
