"""Hand-built kernel DDGs.

``motivating_example`` reconstructs the paper's §2 loop: six operations
``i0..i5`` whose published Schedule B has ``T = [0,1,3,5,7,11]``,
``K = [0,0,0,1,1,2]`` and ``T = 4`` on the :func:`motivating_machine`.
``T_dep = 2`` comes from the self-loop on ``i2`` (a loop-carried
floating-point recurrence), exactly as quoted.

The remaining kernels are hand translations of the loop families the
paper's corpus drew from (livermore loops, linpack, SPEC-style bodies);
they stand in for the unavailable McGill-compiler DDG dumps.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ddg.graph import Ddg


def motivating_example() -> Ddg:
    """The §2 example: two loads feeding an FP chain with a recurrence.

    Source form (one plausible reading)::

        for j:
            t0 = a[j]          # i0: load
            t1 = b[j]          # i1: load
            s  = s + t0        # i2: fadd, loop-carried (self-loop, m=1)
            u  = s + t1        # i3: fadd
            v  = u + c         # i4: fadd
            d[j] = v           # i5: store
    """
    g = Ddg("motivating")
    i0 = g.add_op("i0", "load")
    i1 = g.add_op("i1", "load")
    i2 = g.add_op("i2", "fadd")
    i3 = g.add_op("i3", "fadd")
    i4 = g.add_op("i4", "fadd")
    i5 = g.add_op("i5", "store")
    g.add_dep(i0, i2)
    g.add_dep(i1, i3)
    g.add_dep(i2, i3)
    g.add_dep(i3, i4)
    g.add_dep(i4, i5)
    g.add_dep(i2, i2, distance=1)
    return g


def dot_product() -> Ddg:
    """``s += a[j] * b[j]`` — multiply feeding a loop-carried add."""
    g = Ddg("dotprod")
    la = g.add_op("ld_a", "load")
    lb = g.add_op("ld_b", "load")
    mul = g.add_op("mul", "fmul")
    acc = g.add_op("acc", "fadd")
    g.add_dep(la, mul)
    g.add_dep(lb, mul)
    g.add_dep(mul, acc)
    g.add_dep(acc, acc, distance=1)
    return g


def daxpy() -> Ddg:
    """Linpack ``y[j] = y[j] + a * x[j]`` — no recurrence, memory bound."""
    g = Ddg("daxpy")
    lx = g.add_op("ld_x", "load")
    ly = g.add_op("ld_y", "load")
    mul = g.add_op("mul", "fmul")
    add = g.add_op("add", "fadd")
    st = g.add_op("st_y", "store")
    g.add_dep(lx, mul)
    g.add_dep(mul, add)
    g.add_dep(ly, add)
    g.add_dep(add, st)
    g.add_dep(ly, st, distance=0, kind="anti")
    return g


def livermore_kernel1() -> Ddg:
    """LL1 hydro fragment: ``x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])``."""
    g = Ddg("ll1-hydro")
    z10 = g.add_op("ld_z10", "load")
    z11 = g.add_op("ld_z11", "load")
    m1 = g.add_op("mul_r", "fmul")
    m2 = g.add_op("mul_t", "fmul")
    a1 = g.add_op("add_in", "fadd")
    ly = g.add_op("ld_y", "load")
    m3 = g.add_op("mul_y", "fmul")
    a2 = g.add_op("add_q", "fadd")
    st = g.add_op("st_x", "store")
    g.add_dep(z10, m1)
    g.add_dep(z11, m2)
    g.add_dep(m1, a1)
    g.add_dep(m2, a1)
    g.add_dep(ly, m3)
    g.add_dep(a1, m3)
    g.add_dep(m3, a2)
    g.add_dep(a2, st)
    return g


def livermore_kernel5() -> Ddg:
    """LL5 tri-diagonal elimination: ``x[i] = z[i]*(y[i] - x[i-1])``.

    The loop-carried flow from the store/computed value back into the
    subtraction (distance 1) makes this strongly recurrence-bound.
    """
    g = Ddg("ll5-tridiag")
    lz = g.add_op("ld_z", "load")
    ly = g.add_op("ld_y", "load")
    sub = g.add_op("sub", "fadd")
    mul = g.add_op("mul", "fmul")
    st = g.add_op("st_x", "store")
    g.add_dep(ly, sub)
    g.add_dep(lz, mul)
    g.add_dep(sub, mul)
    g.add_dep(mul, sub, distance=1)  # x[i-1] feeds next subtraction
    g.add_dep(mul, st)
    return g


def livermore_kernel11() -> Ddg:
    """LL11 first sum (prefix sum): ``x[k] = x[k-1] + y[k]``."""
    g = Ddg("ll11-firstsum")
    ly = g.add_op("ld_y", "load")
    add = g.add_op("add", "fadd")
    st = g.add_op("st_x", "store")
    g.add_dep(ly, add)
    g.add_dep(add, add, distance=1)
    g.add_dep(add, st)
    return g


def spice_like() -> Ddg:
    """A SPEC-style body mixing integer address math and FP work."""
    g = Ddg("spice-like")
    addr = g.add_op("addr", "fadd")  # stands for address arithmetic on FP-ish path
    ld1 = g.add_op("ld1", "load")
    ld2 = g.add_op("ld2", "load")
    m1 = g.add_op("m1", "fmul")
    m2 = g.add_op("m2", "fmul")
    a1 = g.add_op("a1", "fadd")
    a2 = g.add_op("a2", "fadd")
    st1 = g.add_op("st1", "store")
    g.add_dep(addr, ld1)
    g.add_dep(addr, ld2)
    g.add_dep(ld1, m1)
    g.add_dep(ld2, m2)
    g.add_dep(m1, a1)
    g.add_dep(m2, a1)
    g.add_dep(a1, a2)
    g.add_dep(a2, st1)
    g.add_dep(a2, a1, distance=2)  # second-order recurrence
    return g


def livermore_kernel2() -> Ddg:
    """LL2 ICCG fragment: ``x[i] = x[i] - z[i]*x[i+1]`` style excerpt."""
    g = Ddg("ll2-iccg")
    lx = g.add_op("ld_x", "load")
    lx1 = g.add_op("ld_x1", "load")
    lz = g.add_op("ld_z", "load")
    mul = g.add_op("mul", "fmul")
    sub = g.add_op("sub", "fadd")
    st = g.add_op("st_x", "store")
    g.add_dep(lz, mul)
    g.add_dep(lx1, mul)
    g.add_dep(lx, sub)
    g.add_dep(mul, sub)
    g.add_dep(sub, st)
    # x[i+1] is read one iteration before iteration i+1 overwrites it.
    g.add_dep(lx1, st, distance=1, kind="mem-anti", latency=1)
    return g


def livermore_kernel3() -> Ddg:
    """LL3 inner product: ``q += z[k] * x[k]`` (same family as dotprod
    but with an extra address add, like the generated code had)."""
    g = Ddg("ll3-inner")
    addr = g.add_op("addr", "add")
    lz = g.add_op("ld_z", "load")
    lx = g.add_op("ld_x", "load")
    mul = g.add_op("mul", "fmul")
    acc = g.add_op("acc", "fadd")
    g.add_dep(addr, lz)
    g.add_dep(addr, lx)
    g.add_dep(lz, mul)
    g.add_dep(lx, mul)
    g.add_dep(mul, acc)
    g.add_dep(acc, acc, distance=1)
    return g


def livermore_kernel7() -> Ddg:
    """LL7 equation-of-state fragment — wide, parallel FP expression."""
    g = Ddg("ll7-eos")
    lu = g.add_op("ld_u", "load")
    lz = g.add_op("ld_z", "load")
    ly = g.add_op("ld_y", "load")
    m1 = g.add_op("m1", "fmul")
    m2 = g.add_op("m2", "fmul")
    m3 = g.add_op("m3", "fmul")
    a1 = g.add_op("a1", "fadd")
    a2 = g.add_op("a2", "fadd")
    a3 = g.add_op("a3", "fadd")
    st = g.add_op("st_x", "store")
    g.add_dep(lu, m1)
    g.add_dep(lz, m2)
    g.add_dep(ly, m3)
    g.add_dep(m1, a1)
    g.add_dep(m2, a1)
    g.add_dep(m3, a2)
    g.add_dep(a1, a3)
    g.add_dep(a2, a3)
    g.add_dep(a3, st)
    return g


def livermore_kernel12() -> Ddg:
    """LL12 first difference: ``x[k] = y[k+1] - y[k]`` — pure streaming."""
    g = Ddg("ll12-firstdiff")
    ly1 = g.add_op("ld_y1", "load")
    ly = g.add_op("ld_y", "load")
    sub = g.add_op("sub", "fadd")
    st = g.add_op("st_x", "store")
    g.add_dep(ly1, sub)
    g.add_dep(ly, sub)
    g.add_dep(sub, st)
    return g


def fir_filter(taps: int = 4) -> Ddg:
    """An N-tap FIR: ``y[i] = sum_k c_k * x[i-k]`` (default 4 taps)."""
    g = Ddg(f"fir{taps}")
    previous = None
    for k in range(taps):
        load = g.add_op(f"ld_x{k}", "load")
        mul = g.add_op(f"m{k}", "fmul")
        g.add_dep(load, mul)
        if previous is None:
            previous = mul
        else:
            acc = g.add_op(f"a{k}", "fadd")
            g.add_dep(previous, acc)
            g.add_dep(mul, acc)
            previous = acc
    st = g.add_op("st_y", "store")
    g.add_dep(previous, st)
    return g


def stencil3() -> Ddg:
    """3-point Jacobi stencil: ``b[i] = (a[i-1] + a[i] + a[i+1]) / 3``."""
    g = Ddg("stencil3")
    lm = g.add_op("ld_am1", "load")
    lc = g.add_op("ld_a0", "load")
    lp = g.add_op("ld_ap1", "load")
    a1 = g.add_op("a1", "fadd")
    a2 = g.add_op("a2", "fadd")
    div = g.add_op("scale", "fmul")
    st = g.add_op("st_b", "store")
    g.add_dep(lm, a1)
    g.add_dep(lc, a1)
    g.add_dep(a1, a2)
    g.add_dep(lp, a2)
    g.add_dep(a2, div)
    g.add_dep(div, st)
    return g


def matmul_inner() -> Ddg:
    """Matrix-multiply inner loop: ``c += a[k] * b[k]`` with two address
    streams (the j-stride load makes the LSU the bottleneck)."""
    g = Ddg("matmul-inner")
    addr_a = g.add_op("addr_a", "add")
    addr_b = g.add_op("addr_b", "add")
    la = g.add_op("ld_a", "load")
    lb = g.add_op("ld_b", "load")
    mul = g.add_op("mul", "fmul")
    acc = g.add_op("acc", "fadd")
    g.add_dep(addr_a, la)
    g.add_dep(addr_b, lb)
    g.add_dep(addr_a, addr_a, distance=1)
    g.add_dep(addr_b, addr_b, distance=1)
    g.add_dep(la, mul)
    g.add_dep(lb, mul)
    g.add_dep(mul, acc)
    g.add_dep(acc, acc, distance=1)
    return g


def newton_step() -> Ddg:
    """Newton iteration body with a blocking divide in the recurrence:
    ``x = x - f(x)/g(x)`` — exercises non-pipelined FU recurrences."""
    g = Ddg("newton")
    f = g.add_op("f", "fmul")
    gp = g.add_op("gp", "fadd")
    div = g.add_op("div", "fdiv")
    upd = g.add_op("upd", "fadd")
    g.add_dep(f, div)
    g.add_dep(gp, div)
    g.add_dep(div, upd)
    g.add_dep(upd, f, distance=1)
    g.add_dep(upd, gp, distance=1)
    return g


#: Registry of all hand kernels (used by CLI and benches).
KERNELS: Dict[str, Callable[[], Ddg]] = {
    "motivating": motivating_example,
    "dotprod": dot_product,
    "daxpy": daxpy,
    "ll1": livermore_kernel1,
    "ll2": livermore_kernel2,
    "ll3": livermore_kernel3,
    "ll5": livermore_kernel5,
    "ll7": livermore_kernel7,
    "ll11": livermore_kernel11,
    "ll12": livermore_kernel12,
    "fir4": fir_filter,
    "stencil3": stencil3,
    "matmul": matmul_inner,
    "newton": newton_step,
    "spice": spice_like,
}


def all_kernels() -> List[Ddg]:
    return [factory() for factory in KERNELS.values()]


def by_name(name: str) -> Ddg:
    try:
        return KERNELS[name]()
    except KeyError:
        known = ", ".join(sorted(KERNELS))
        raise KeyError(f"unknown kernel {name!r}; known: {known}")
