"""A tiny text format for DDGs (CLI input / corpus files).

Format, one directive per line (``#`` comments allowed)::

    loop dotprod
    op   i0 load
    op   i1 fmul
    op   i2 fadd
    dep  i0 i1 0
    dep  i1 i2 0 flow
    dep  i2 i2 1 flow

``dep SRC DST DISTANCE [KIND]`` — distance defaults to 0, kind to "flow".
"""

from __future__ import annotations

from typing import List

from repro.ddg.errors import DdgError
from repro.ddg.graph import Ddg


def parse_ddg(text: str) -> Ddg:
    """Parse the text format into a :class:`Ddg`."""
    ddg = Ddg()
    saw_loop = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        directive = tokens[0]
        try:
            if directive == "loop":
                _expect(tokens, 2, lineno)
                if saw_loop:
                    raise DdgError(f"line {lineno}: duplicate 'loop' directive")
                ddg.name = tokens[1]
                saw_loop = True
            elif directive == "op":
                _expect(tokens, 3, lineno)
                ddg.add_op(tokens[1], tokens[2])
            elif directive == "dep":
                if len(tokens) not in (3, 4, 5, 6):
                    raise DdgError(
                        f"line {lineno}: 'dep' takes SRC DST "
                        "[DISTANCE [KIND [LATENCY]]]"
                    )
                distance = int(tokens[3]) if len(tokens) >= 4 else 0
                kind = tokens[4] if len(tokens) >= 5 else "flow"
                latency = int(tokens[5]) if len(tokens) == 6 else None
                ddg.add_dep(tokens[1], tokens[2], distance, kind, latency)
            else:
                raise DdgError(f"line {lineno}: unknown directive {directive!r}")
        except ValueError as exc:
            raise DdgError(f"line {lineno}: {exc}") from exc
        except DdgError as exc:
            if str(exc).startswith("line "):
                raise
            raise DdgError(f"line {lineno}: {exc}") from exc
    if ddg.num_ops == 0:
        raise DdgError("no ops in DDG text")
    return ddg


def _expect(tokens: List[str], count: int, lineno: int) -> None:
    if len(tokens) != count:
        raise DdgError(
            f"line {lineno}: '{tokens[0]}' takes {count - 1} argument(s)"
        )


def serialize_ddg(ddg: Ddg) -> str:
    """Render a DDG back into the text format (round-trips with parse)."""
    lines = [f"loop {ddg.name}"]
    for op in ddg.ops:
        lines.append(f"op {op.name} {op.op_class}")
    for dep in ddg.deps:
        src = ddg.ops[dep.src].name
        dst = ddg.ops[dep.dst].name
        line = f"dep {src} {dst} {dep.distance} {dep.kind}"
        if dep.latency is not None:
            line += f" {dep.latency}"
        lines.append(line)
    return "\n".join(lines) + "\n"
