"""Corpus statistics (size, structure, class mix).

Backs the Table 4 size columns and the generator-calibration tests: the
paper characterizes its 1066-loop corpus only through aggregate numbers
(mean DDG sizes per bucket), so the synthetic stand-in is validated
against the same kind of aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ddg.analysis import has_recurrence
from repro.ddg.graph import Ddg


@dataclass
class CorpusStats:
    """Aggregates over a list of loops."""

    count: int
    mean_ops: float
    min_ops: int
    max_ops: int
    mean_deps: float
    recurrence_fraction: float
    size_histogram: Dict[int, int] = field(default_factory=dict)
    class_mix: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"corpus: {self.count} loops, {self.min_ops}-{self.max_ops} "
            f"ops (mean {self.mean_ops:.1f}), mean deps "
            f"{self.mean_deps:.1f}, {100 * self.recurrence_fraction:.0f}% "
            "with recurrences",
            "size histogram:",
        ]
        peak = max(self.size_histogram.values(), default=1)
        for size in sorted(self.size_histogram):
            bar = "#" * max(1, round(30 * self.size_histogram[size] / peak))
            lines.append(
                f"  {size:>3} ops: {self.size_histogram[size]:>5} {bar}"
            )
        lines.append("class mix: " + ", ".join(
            f"{cls} {100 * frac:.1f}%"
            for cls, frac in sorted(self.class_mix.items(),
                                    key=lambda kv: -kv[1])
        ))
        return "\n".join(lines)


def corpus_stats(loops: Sequence[Ddg], histogram_bucket: int = 2) -> CorpusStats:
    """Compute :class:`CorpusStats` for a corpus."""
    if not loops:
        raise ValueError("empty corpus")
    sizes = [g.num_ops for g in loops]
    deps = [g.num_deps for g in loops]
    histogram: Dict[int, int] = {}
    for size in sizes:
        bucket = (size // histogram_bucket) * histogram_bucket
        histogram[bucket] = histogram.get(bucket, 0) + 1
    class_counts: Dict[str, int] = {}
    total_ops = 0
    for g in loops:
        for op in g.ops:
            class_counts[op.op_class] = class_counts.get(op.op_class, 0) + 1
            total_ops += 1
    with_recurrence = sum(1 for g in loops if has_recurrence(g))
    return CorpusStats(
        count=len(loops),
        mean_ops=sum(sizes) / len(sizes),
        min_ops=min(sizes),
        max_ops=max(sizes),
        mean_deps=sum(deps) / len(deps),
        recurrence_fraction=with_recurrence / len(loops),
        size_histogram=histogram,
        class_mix={
            cls: count / total_ops for cls, count in class_counts.items()
        },
    )


def size_percentiles(loops: Sequence[Ddg],
                     points: Sequence[float] = (0.5, 0.9, 0.99)) -> List[int]:
    """Op-count percentiles (nearest-rank)."""
    sizes = sorted(g.num_ops for g in loops)
    result = []
    for p in points:
        rank = min(len(sizes) - 1, max(0, round(p * len(sizes)) - 1))
        result.append(sizes[rank])
    return result
