"""The data dependence graph (DDG) data structure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

import networkx as nx

from repro.ddg.errors import DdgError

if TYPE_CHECKING:
    from repro.machine import Machine


@dataclass(frozen=True)
class Op:
    """One operation of the loop body."""

    name: str
    op_class: str
    index: int

    def __repr__(self) -> str:
        return f"Op({self.name}:{self.op_class}@{self.index})"


@dataclass(frozen=True)
class Dep:
    """A dependence edge ``src -> dst`` with iteration distance ``m_ij``.

    ``distance`` counts how many iterations later the consumer runs
    (the omega of the classic notation).  ``kind`` is a free-form label
    ("flow", "anti", "output", "mem-flow", ...).

    ``latency`` optionally overrides the separation the edge enforces
    (``t_dst - t_src >= latency - T*m``); when ``None`` the producer's
    machine latency ``d_src`` applies.  Anti and output memory
    dependences use an override of 1: the conflicting access only has to
    *start* after the first, not wait for its result.
    """

    src: int
    dst: int
    distance: int
    kind: str = "flow"
    latency: Optional[int] = None

    def __repr__(self) -> str:
        extra = f", lat={self.latency}" if self.latency is not None else ""
        return (
            f"Dep({self.src}->{self.dst}, m={self.distance}, "
            f"{self.kind}{extra})"
        )


class Ddg:
    """A loop-body dependence graph.

    Build incrementally::

        g = Ddg("dotprod")
        a = g.add_op("i0", "load")
        b = g.add_op("i1", "fadd")
        g.add_dep(a, b)                      # intra-iteration
        g.add_dep(b, b, distance=1)          # loop-carried reduction
    """

    def __init__(self, name: str = "loop") -> None:
        self.name = name
        self.ops: List[Op] = []
        self.deps: List[Dep] = []
        self._by_name: Dict[str, int] = {}

    # -- construction ---------------------------------------------------------
    def add_op(self, name: str, op_class: str) -> Op:
        if name in self._by_name:
            raise DdgError(f"duplicate op name {name!r}")
        op = Op(name, op_class, len(self.ops))
        self.ops.append(op)
        self._by_name[name] = op.index
        return op

    def add_dep(
        self,
        src,
        dst,
        distance: int = 0,
        kind: str = "flow",
        latency: Optional[int] = None,
    ) -> Dep:
        """Add a dependence; ``src``/``dst`` may be ops, names or indices."""
        s = self._resolve(src)
        d = self._resolve(dst)
        if distance < 0:
            raise DdgError(f"dependence distance must be >= 0, got {distance}")
        if latency is not None and latency < 0:
            raise DdgError(f"dependence latency must be >= 0, got {latency}")
        if s == d and distance == 0:
            raise DdgError(
                f"op {self.ops[s].name!r} cannot depend on itself in the "
                "same iteration"
            )
        dep = Dep(s, d, distance, kind, latency)
        self.deps.append(dep)
        return dep

    def _resolve(self, ref) -> int:
        if isinstance(ref, Op):
            if ref.index >= len(self.ops) or self.ops[ref.index] is not ref:
                raise DdgError(f"op {ref.name!r} belongs to a different DDG")
            return ref.index
        if isinstance(ref, str):
            try:
                return self._by_name[ref]
            except KeyError:
                raise DdgError(f"unknown op name {ref!r}") from None
        if isinstance(ref, int):
            if not 0 <= ref < len(self.ops):
                raise DdgError(f"op index {ref} out of range")
            return ref
        raise DdgError(f"cannot resolve op reference {ref!r}")

    # -- queries -------------------------------------------------------------------
    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def num_deps(self) -> int:
        return len(self.deps)

    def op(self, ref) -> Op:
        return self.ops[self._resolve(ref)]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def successors(self, ref) -> List[Tuple[Op, Dep]]:
        idx = self._resolve(ref)
        return [(self.ops[d.dst], d) for d in self.deps if d.src == idx]

    def predecessors(self, ref) -> List[Tuple[Op, Dep]]:
        idx = self._resolve(ref)
        return [(self.ops[d.src], d) for d in self.deps if d.dst == idx]

    def classes_used(self) -> List[str]:
        """Distinct op classes, in first-appearance order."""
        seen: Dict[str, None] = {}
        for op in self.ops:
            seen.setdefault(op.op_class, None)
        return list(seen)

    # -- machine integration ------------------------------------------------------------
    def validate_against(self, machine: "Machine") -> None:
        """Check every op class exists on the machine."""
        for op in self.ops:
            machine.op_class(op.op_class)  # raises MachineError if unknown

    def latencies(self, machine: "Machine") -> List[int]:
        """Per-op dependence latency ``d_i`` under ``machine``."""
        return [machine.latency(op.op_class) for op in self.ops]

    def dep_latencies(self, machine: "Machine") -> List[int]:
        """Per-edge enforced separation, aligned with :attr:`deps`.

        Each edge's override if set, otherwise its producer's latency.
        """
        lat = self.latencies(machine)
        return [
            dep.latency if dep.latency is not None else lat[dep.src]
            for dep in self.deps
        ]

    # -- conversions --------------------------------------------------------------------
    def to_networkx(self, machine: Optional["Machine"] = None) -> nx.MultiDiGraph:
        """Export to a networkx multigraph (parallel edges preserved)."""
        graph = nx.MultiDiGraph(name=self.name)
        for op in self.ops:
            attrs = {"op_class": op.op_class}
            if machine is not None:
                attrs["latency"] = machine.latency(op.op_class)
            graph.add_node(op.index, name=op.name, **attrs)
        for dep in self.deps:
            graph.add_edge(dep.src, dep.dst, distance=dep.distance,
                           kind=dep.kind)
        return graph

    def copy(self, name: Optional[str] = None) -> "Ddg":
        clone = Ddg(name or self.name)
        for op in self.ops:
            clone.add_op(op.name, op.op_class)
        for dep in self.deps:
            clone.add_dep(dep.src, dep.dst, dep.distance, dep.kind,
                          dep.latency)
        return clone

    def __repr__(self) -> str:
        return f"Ddg({self.name!r}, ops={self.num_ops}, deps={self.num_deps})"
