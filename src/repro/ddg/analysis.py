"""Dependence analysis: the recurrence bound ``T_dep`` and critical cycles.

The loop-carried dependences bound the initiation interval from below
(Reiter [23]):

    T_dep = max over cycles C of ceil( sum(d_i for i in C) / sum(m_ij) )

Instead of enumerating cycles (exponential) we binary-search the smallest
integer ``T`` for which the dependence constraint system
``t_j - t_i >= d_i - T * m_ij`` admits a solution — i.e. the constraint
graph has no positive-weight cycle, checked with Bellman–Ford.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

import networkx as nx

from repro.ddg.errors import DdgError
from repro.ddg.graph import Ddg

if TYPE_CHECKING:
    from repro.machine import Machine

#: Sentinel distance sum guaranteeing feasibility (see :func:`t_dep`).
_INF = float("inf")


def _edge_weights(ddg: Ddg, machine: "Machine", t_period: int):
    """Constraint-graph edges ``(src, dst, weight)`` for a candidate T."""
    separations = ddg.dep_latencies(machine)
    return [
        (dep.src, dep.dst, sep - t_period * dep.distance)
        for dep, sep in zip(ddg.deps, separations)
    ]


def _positive_cycle(
    num_ops: int, edges: List[Tuple[int, int, int]]
) -> Optional[List[int]]:
    """Find a positive-weight cycle via Bellman–Ford, or None.

    Runs longest-path relaxation from a virtual source connected to every
    node with weight 0; a relaxation succeeding on pass ``n`` exposes a
    positive cycle, which is recovered by walking predecessors.
    """
    dist = [0.0] * num_ops
    pred: List[Optional[int]] = [None] * num_ops
    updated_node = None
    for _ in range(num_ops):
        updated_node = None
        for src, dst, weight in edges:
            if dist[src] + weight > dist[dst] + 1e-12:
                dist[dst] = dist[src] + weight
                pred[dst] = src
                updated_node = dst
        if updated_node is None:
            return None
    # Walk back num_ops steps to land inside the cycle, then peel it off.
    node = updated_node
    for _ in range(num_ops):
        node = pred[node]  # type: ignore[assignment]
    cycle = [node]
    walker = pred[node]
    while walker != node:
        cycle.append(walker)  # type: ignore[arg-type]
        walker = pred[walker]  # type: ignore[index]
    cycle.reverse()
    return cycle


def dependence_feasible(ddg: Ddg, machine: "Machine", t_period: int) -> bool:
    """Whether ``T`` satisfies every loop-carried recurrence."""
    if t_period < 1:
        return False
    edges = _edge_weights(ddg, machine, t_period)
    return _positive_cycle(ddg.num_ops, edges) is None


def t_dep(ddg: Ddg, machine: "Machine") -> int:
    """Smallest integer T admitting a legal periodic schedule w.r.t.
    dependences alone (resources ignored)."""
    if ddg.num_ops == 0:
        raise DdgError("empty DDG has no schedule")
    zero_distance_cycle = _positive_cycle(
        ddg.num_ops,
        [
            (d.src, d.dst, 1 if d.distance == 0 else -ddg.num_ops * 10**6)
            for d in ddg.deps
        ],
    )
    if zero_distance_cycle is not None:
        raise DdgError(
            "DDG has a dependence cycle with total distance 0; "
            "no periodic schedule exists"
        )
    hi = sum(ddg.latencies(machine)) + 1
    lo = 1
    if dependence_feasible(ddg, machine, lo):
        return lo
    # Invariant: lo infeasible, hi feasible.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if dependence_feasible(ddg, machine, mid):
            hi = mid
        else:
            lo = mid
    return hi


def critical_cycle(ddg: Ddg, machine: "Machine") -> Optional[List[int]]:
    """A cycle achieving T_dep (op indices in order), or None if acyclic.

    Found as a positive cycle of the constraint graph at ``T_dep - 1``;
    by construction its latency/distance ratio exceeds ``T_dep - 1``,
    i.e. rounds up to ``T_dep``.
    """
    bound = t_dep(ddg, machine)
    if bound <= 1:
        # Check there is any recurrence at all.
        if not has_recurrence(ddg):
            return None
    edges = _edge_weights(ddg, machine, bound - 1)
    if bound - 1 >= 1:
        return _positive_cycle(ddg.num_ops, edges)
    # T_dep == 1: any recurrence is "critical" only vacuously; report the
    # heaviest simple cycle found by networkx for display purposes.
    graph = ddg.to_networkx()
    try:
        cycle_edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def has_recurrence(ddg: Ddg) -> bool:
    """True when the DDG contains at least one dependence cycle."""
    graph = ddg.to_networkx()
    return any(len(scc) > 1 for scc in nx.strongly_connected_components(graph)) or any(
        graph.has_edge(n, n) for n in graph.nodes
    )


def cycle_ratio(ddg: Ddg, machine: "Machine", cycle: List[int]) -> Tuple[int, int]:
    """(sum of latencies, sum of distances) along an op-index cycle.

    The cycle is given as a node sequence; edges are looked up between
    consecutive nodes (choosing, among parallel edges, the one with the
    best latency-minus-distance trade-off is unnecessary here — we pick
    the minimum distance, which maximizes the ratio).
    """
    lat = ddg.latencies(machine)
    total_latency = 0
    total_distance = 0
    n = len(cycle)
    for pos, src in enumerate(cycle):
        dst = cycle[(pos + 1) % n]
        candidates = [d for d in ddg.deps if d.src == src and d.dst == dst]
        if not candidates:
            raise DdgError(f"no dependence {src}->{dst} along claimed cycle")
        best = min(candidates, key=lambda d: d.distance)
        total_latency += lat[src]
        total_distance += best.distance
    return total_latency, total_distance


def strongly_connected_components(ddg: Ddg) -> List[List[int]]:
    """SCCs of the DDG as lists of op indices (singletons included)."""
    graph = ddg.to_networkx()
    return [sorted(scc) for scc in nx.strongly_connected_components(graph)]
