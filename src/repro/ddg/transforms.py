"""DDG transformations: loop unrolling and renaming.

Unrolling replicates the loop body ``factor`` times and rewires
dependences: a dependence with distance ``m`` from copy ``a`` reaches
copy ``(a + m) mod factor`` of the destination at distance
``(a + m) // factor``.  Scheduling the unrolled body at period ``T'``
yields an effective per-original-iteration rate of ``T'/factor`` — the
classic way to beat a fractional recurrence bound, used by the unrolling
ablation bench.
"""

from __future__ import annotations

from repro.ddg.errors import DdgError
from repro.ddg.graph import Ddg


def unroll(ddg: Ddg, factor: int) -> Ddg:
    """Return the ``factor``-times unrolled body of ``ddg``.

    Op ``x`` of copy ``a`` is named ``{x}__u{a}``.  Intra-iteration
    dependences are replicated within each copy; loop-carried
    dependences step forward ``m`` copies, wrapping into the next
    unrolled iteration with the distance divided accordingly.
    """
    if factor < 1:
        raise DdgError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return ddg.copy()
    unrolled = Ddg(f"{ddg.name}__x{factor}")
    for copy_index in range(factor):
        for op in ddg.ops:
            unrolled.add_op(f"{op.name}__u{copy_index}", op.op_class)

    def renamed(op_index: int, copy_index: int) -> str:
        return f"{ddg.ops[op_index].name}__u{copy_index}"

    for dep in ddg.deps:
        for copy_index in range(factor):
            target_copy = copy_index + dep.distance
            new_distance, dst_copy = divmod(target_copy, factor)
            unrolled.add_dep(
                renamed(dep.src, copy_index),
                renamed(dep.dst, dst_copy),
                distance=new_distance,
                kind=dep.kind,
                latency=dep.latency,
            )
    return unrolled


def rename_ops(ddg: Ddg, prefix: str) -> Ddg:
    """A copy of ``ddg`` with every op name prefixed (for composition)."""
    renamed = Ddg(ddg.name)
    for op in ddg.ops:
        renamed.add_op(f"{prefix}{op.name}", op.op_class)
    for dep in ddg.deps:
        renamed.add_dep(dep.src, dep.dst, dep.distance, dep.kind,
                        dep.latency)
    return renamed


def scrambled(ddg: Ddg, rng, name: str = "", prefix: str = "q") -> Ddg:
    """An isomorphic copy with renamed ops, shuffled op and dep order.

    Structurally identical to ``ddg`` (same classes, same dependence
    structure) but textually unrecognizable — the adversarial input the
    canonical digest (:mod:`repro.ddg.canonical`) must see through.
    ``rng`` is a :class:`random.Random`.
    """
    order = list(range(ddg.num_ops))
    rng.shuffle(order)
    new_of_old = {old: new for new, old in enumerate(order)}
    copy = Ddg(name or f"{ddg.name}_scrambled")
    for new, old in enumerate(order):
        copy.add_op(f"{prefix}{new}", ddg.ops[old].op_class)
    deps = list(ddg.deps)
    rng.shuffle(deps)
    for dep in deps:
        copy.add_dep(new_of_old[dep.src], new_of_old[dep.dst],
                     dep.distance, dep.kind, dep.latency)
    return copy


def concatenate(first: Ddg, second: Ddg, name: str = "") -> Ddg:
    """Disjoint union of two loop bodies (independent fused loops)."""
    merged = Ddg(name or f"{first.name}+{second.name}")
    for ddg, prefix in ((first, "a_"), (second, "b_")):
        base = merged.num_ops
        for op in ddg.ops:
            merged.add_op(f"{prefix}{op.name}", op.op_class)
        for dep in ddg.deps:
            merged.add_dep(base + dep.src, base + dep.dst,
                           dep.distance, dep.kind, dep.latency)
    return merged
