"""Data-dependence-graph substrate.

Loop bodies are represented as DDGs: nodes are operations (with an
instruction class resolved against a :class:`repro.machine.Machine`),
edges are dependences with an iteration **distance** ``m_ij`` (0 =
intra-iteration, >0 = loop-carried).  This is the input format the
paper's testbed compiler produced for its 1066 benchmark loops; here the
DDGs come from hand-built kernels (:mod:`repro.ddg.kernels`), a tiny text
format (:mod:`repro.ddg.builders`), or calibrated synthetic generators
(:mod:`repro.ddg.generators`).
"""

from repro.ddg.errors import DdgError
from repro.ddg.graph import Ddg, Dep, Op

__all__ = ["Ddg", "DdgError", "Dep", "Op"]
