"""Errors raised by the DDG substrate."""


class DdgError(Exception):
    """Malformed dependence graph (unknown ops, bad distances, ...)."""
