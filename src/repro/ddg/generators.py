"""Synthetic loop generators.

The paper's corpus — 1066 loop DDGs emitted by the McGill testbed compiler
from SPEC92 / NAS / linpack / livermore — is not available, so
:func:`suite1066` generates a seeded, reproducible stand-in calibrated to
the aggregate statistics Table 4 reports: predominantly small loops (the
735 loops scheduled at ``T_lb`` average 6 nodes) with a tail of larger
bodies (16–17 node averages for the harder buckets).

Structure guarantees:

* every generated DDG is connected (a random spanning arborescence plus
  extra forward edges),
* every cycle carries distance >= 1 (back edges get distance >= 1), so a
  periodic schedule always exists,
* op classes are drawn from a weighted mix over the target machine's
  classes, mirroring a scalar-code profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ddg.errors import DdgError
from repro.ddg.graph import Ddg
from repro.machine import Machine

#: Instruction-class mix for PowerPC-604-style scalar loop code.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "load": 0.22,
    "store": 0.10,
    "add": 0.16,
    "logical": 0.04,
    "shift": 0.04,
    "cmp": 0.04,
    "mul": 0.03,
    "fadd": 0.18,
    "fmul": 0.16,
    "div": 0.015,
    "fdiv": 0.015,
}


@dataclass
class GeneratorConfig:
    """Tunable knobs for :func:`random_ddg`."""

    min_ops: int = 2
    max_ops: int = 40
    #: Geometric-tail parameter for sizes; mean size ~= min_ops + (1-p)/p.
    size_p: float = 0.22
    #: Probability of each extra forward (intra-iteration) edge.
    edge_prob: float = 0.15
    #: Expected number of loop-carried back edges per loop.
    recurrences: float = 1.0
    #: Probability that a recurrence is a self-loop (accumulator).
    self_loop_prob: float = 0.4
    max_distance: int = 3
    class_weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )


def _sample_size(rng: random.Random, config: GeneratorConfig) -> int:
    size = config.min_ops
    while size < config.max_ops and rng.random() > config.size_p:
        size += 1
    return size


def _usable_weights(machine: Machine, config: GeneratorConfig) -> Dict[str, float]:
    weights = {
        cls: w for cls, w in config.class_weights.items()
        if cls in machine.op_classes
    }
    if not weights:
        raise DdgError(
            "none of the configured op classes exist on the machine"
        )
    return weights


def random_ddg(
    rng: random.Random,
    machine: Machine,
    config: Optional[GeneratorConfig] = None,
    name: str = "synthetic",
    num_ops: Optional[int] = None,
) -> Ddg:
    """Generate one synthetic loop DDG valid on ``machine``."""
    config = config or GeneratorConfig()
    weights = _usable_weights(machine, config)
    classes = list(weights)
    cum = list(weights.values())
    n = num_ops if num_ops is not None else _sample_size(rng, config)
    if n < 1:
        raise DdgError("num_ops must be >= 1")

    ddg = Ddg(name)
    for i in range(n):
        op_class = rng.choices(classes, weights=cum, k=1)[0]
        ddg.add_op(f"n{i}", op_class)

    # Spanning arborescence: each op after the first depends on an earlier one.
    for j in range(1, n):
        parent = rng.randrange(j)
        ddg.add_dep(parent, j)
    # Extra forward edges.
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < config.edge_prob / max(1, (j - i)):
                if not _has_dep(ddg, i, j):
                    ddg.add_dep(i, j)
    # Loop-carried recurrences (back edges with distance >= 1).
    expected = config.recurrences
    while expected > 0:
        if expected < 1 and rng.random() > expected:
            break
        expected -= 1
        distance = rng.randint(1, config.max_distance)
        if n == 1 or rng.random() < config.self_loop_prob:
            node = rng.randrange(n)
            if not _has_dep(ddg, node, node):
                ddg.add_dep(node, node, distance=distance)
        else:
            dst = rng.randrange(n - 1)
            src = rng.randrange(dst + 1, n)
            if not _has_dep(ddg, src, dst):
                ddg.add_dep(src, dst, distance=distance, kind="carried")
    return ddg


def _has_dep(ddg: Ddg, src: int, dst: int) -> bool:
    return any(d.src == src and d.dst == dst for d in ddg.deps)


def suite(
    count: int,
    machine: Machine,
    seed: int = 604,
    config: Optional[GeneratorConfig] = None,
) -> List[Ddg]:
    """A reproducible suite of ``count`` synthetic loops."""
    rng = random.Random(seed)
    config = config or GeneratorConfig()
    return [
        random_ddg(rng, machine, config, name=f"loop{i:04d}")
        for i in range(count)
    ]


def suite1066(machine: Machine, seed: int = 604) -> List[Ddg]:
    """The Table 4 / Table 5 stand-in corpus: 1066 loops."""
    return suite(1066, machine, seed=seed)


# ---------------------------------------------------------------------------
# Parameterized generation (the `repro gen` corpus substrate).
#
# Everything below is additive: :func:`random_ddg` keeps its exact
# sampling sequence (the checked-in corpus/ files pin its output
# byte-for-byte), while :func:`parameterized_ddg` exposes the knobs a
# paper-scale corpus needs — recurrence-cycle count and depth, distance
# distributions, FU-class mix profiles, and an adversarial construction
# mode alongside the guaranteed-schedulable one.
# ---------------------------------------------------------------------------

#: Named instruction-class mixes.  Profiles deliberately over-specify
#: classes; they are filtered to whatever the target machine implements
#: (:func:`_filter_weights`), so one profile works across presets.
PROFILES: Dict[str, Dict[str, float]] = {
    # PowerPC-604-style scalar loop code (the historical default mix).
    "scalar": dict(DEFAULT_WEIGHTS),
    # FP-dominated numeric kernels (livermore/linpack regime).
    "fp": {
        "load": 0.20, "store": 0.08, "add": 0.06, "fadd": 0.30,
        "fmul": 0.28, "fdiv": 0.04, "mul": 0.02, "cmp": 0.02,
    },
    # Integer/control code (SPECint regime; matches integer cores).
    "int": {
        "add": 0.30, "logical": 0.12, "shift": 0.10, "cmp": 0.12,
        "mul": 0.08, "div": 0.04, "load": 0.16, "store": 0.08,
    },
    # Memory-bound streaming loops.
    "mem": {
        "load": 0.40, "store": 0.22, "add": 0.18, "fadd": 0.10,
        "fmul": 0.06, "cmp": 0.04,
    },
    # Blocking-unit pressure: divides compete for non-pipelined FUs.
    "div": {
        "div": 0.20, "fdiv": 0.18, "mul": 0.12, "fmul": 0.12,
        "fadd": 0.12, "add": 0.10, "load": 0.16, "store": 0.10,
    },
}

#: Construction modes for :func:`parameterized_ddg`.
MODES = ("guaranteed", "adversarial")

#: Dependence-distance distributions for loop-carried edges.
DISTANCE_DISTS = ("uniform", "geometric", "unit")


@dataclass(frozen=True)
class GenParams:
    """Knobs for :func:`parameterized_ddg` (manifest-serializable).

    ``mode`` selects the construction discipline:

    * ``"guaranteed"`` — connected DAG of forward edges plus recurrence
      cycles whose back edge always carries distance >= 1, so a
      periodic schedule exists at every large-enough ``T``;
    * ``"adversarial"`` — same well-formedness invariant (no 0-distance
      cycle can be built), but the sampler is pointed at solver pain:
      possibly disconnected bodies, wide layers of interchangeable
      same-class ops (symmetry), parallel multi-edges, random latency
      overrides, and deep unit-distance recurrence chains.
    """

    mode: str = "guaranteed"
    min_ops: int = 2
    max_ops: int = 40
    #: Geometric-tail parameter for sizes; mean ~= min_ops + (1-p)/p.
    size_p: float = 0.22
    #: Probability weight of each extra forward (distance-0) edge.
    edge_prob: float = 0.15
    #: Number of recurrence cycles threaded through the body.
    cycles: int = 1
    #: Maximum ops per recurrence cycle (1 = self-loop accumulators).
    cycle_depth: int = 1
    max_distance: int = 3
    distance_dist: str = "uniform"
    #: Class-mix profile name (key of :data:`PROFILES`).
    profile: str = "scalar"
    #: Chance a forward edge carries an explicit latency override.
    latency_override_prob: float = 0.0
    #: Chance an op is left unlinked from the spanning arborescence
    #: (adversarial: disconnected bodies are legal and stress mapping).
    disconnect_prob: float = 0.0
    #: Chance of duplicating a dependence as a parallel multi-edge.
    multi_edge_prob: float = 0.0

    def validate(self) -> None:
        if self.mode not in MODES:
            raise DdgError(
                f"unknown generator mode {self.mode!r}; known: {MODES}"
            )
        if self.distance_dist not in DISTANCE_DISTS:
            raise DdgError(
                f"unknown distance distribution {self.distance_dist!r}; "
                f"known: {DISTANCE_DISTS}"
            )
        if self.profile not in PROFILES:
            raise DdgError(
                f"unknown class profile {self.profile!r}; "
                f"known: {sorted(PROFILES)}"
            )
        if not 1 <= self.min_ops <= self.max_ops:
            raise DdgError(
                f"need 1 <= min_ops <= max_ops, got "
                f"{self.min_ops}..{self.max_ops}"
            )
        if self.cycles < 0 or self.cycle_depth < 1:
            raise DdgError("cycles must be >= 0 and cycle_depth >= 1")
        if self.max_distance < 1:
            raise DdgError("max_distance must be >= 1")

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "min_ops": self.min_ops,
            "max_ops": self.max_ops,
            "size_p": self.size_p,
            "edge_prob": self.edge_prob,
            "cycles": self.cycles,
            "cycle_depth": self.cycle_depth,
            "max_distance": self.max_distance,
            "distance_dist": self.distance_dist,
            "profile": self.profile,
            "latency_override_prob": self.latency_override_prob,
            "disconnect_prob": self.disconnect_prob,
            "multi_edge_prob": self.multi_edge_prob,
        }

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "GenParams":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(doc) - known
        if unknown:
            raise DdgError(
                f"unknown generator parameter(s) {sorted(unknown)}"
            )
        params = cls(**doc)  # type: ignore[arg-type]
        params.validate()
        return params


#: Adversarial defaults: bigger bodies, deep tight recurrences, broken
#: connectivity, duplicated edges, override noise, blocking-unit mix.
ADVERSARIAL_DEFAULTS = dict(
    mode="adversarial",
    min_ops=4,
    max_ops=48,
    size_p=0.12,
    edge_prob=0.30,
    cycles=3,
    cycle_depth=4,
    max_distance=2,
    distance_dist="unit",
    profile="div",
    latency_override_prob=0.25,
    disconnect_prob=0.15,
    multi_edge_prob=0.10,
)


def adversarial_params(**overrides) -> GenParams:
    """Adversarial-mode defaults, tweakable per corpus family."""
    merged = dict(ADVERSARIAL_DEFAULTS)
    merged.update(overrides)
    return GenParams(**merged)  # type: ignore[arg-type]


def _filter_weights(
    machine: Machine, weights: Dict[str, float]
) -> Dict[str, float]:
    usable = {
        cls: w for cls, w in weights.items() if cls in machine.op_classes
    }
    if not usable:
        raise DdgError(
            "none of the configured op classes exist on the machine"
        )
    return usable


def _sample_param_size(rng: random.Random, params: GenParams) -> int:
    size = params.min_ops
    while size < params.max_ops and rng.random() > params.size_p:
        size += 1
    return size


def _sample_distance(rng: random.Random, params: GenParams) -> int:
    if params.distance_dist == "unit":
        return 1
    if params.distance_dist == "geometric":
        distance = 1
        while distance < params.max_distance and rng.random() < 0.4:
            distance += 1
        return distance
    return rng.randint(1, params.max_distance)


def parameterized_ddg(
    rng: random.Random,
    machine: Machine,
    params: GenParams,
    name: str = "gen",
) -> Ddg:
    """Generate one loop DDG under ``params``, valid on ``machine``.

    Well-formedness invariant (both modes): forward edges only run from
    lower to higher op index and every back edge carries distance >= 1,
    so no 0-distance dependence cycle can exist and ``T_dep`` is always
    finite.  In guaranteed mode the body is additionally connected and
    free of parallel edges, the construction the property harness
    asserts always schedules within a generous sweep budget.
    """
    params.validate()
    weights = _filter_weights(machine, PROFILES[params.profile])
    classes = list(weights)
    cum = list(weights.values())
    n = _sample_param_size(rng, params)

    ddg = Ddg(name)
    for i in range(n):
        op_class = rng.choices(classes, weights=cum, k=1)[0]
        ddg.add_op(f"n{i}", op_class)

    # Spanning arborescence (guaranteed mode: always; adversarial mode:
    # each op may stay unlinked, yielding disconnected components).
    for j in range(1, n):
        if (params.mode == "adversarial"
                and rng.random() < params.disconnect_prob):
            continue
        ddg.add_dep(rng.randrange(j), j)
    # Extra forward (intra-iteration) edges, denser near the diagonal.
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < params.edge_prob / max(1, (j - i)):
                if not _has_dep(ddg, i, j):
                    latency = None
                    if rng.random() < params.latency_override_prob:
                        latency = rng.randint(
                            0, machine.latency(ddg.ops[i].op_class) + 1
                        )
                    ddg.add_dep(i, j, latency=latency)
    # Recurrence cycles: a forward chain of `depth` ops closed by one
    # back edge carrying the sampled distance.
    for _ in range(params.cycles):
        depth = rng.randint(1, min(params.cycle_depth, n))
        members = sorted(rng.sample(range(n), depth))
        for src, dst in zip(members, members[1:]):
            if not _has_dep(ddg, src, dst):
                ddg.add_dep(src, dst)
        distance = _sample_distance(rng, params)
        first, last = members[0], members[-1]
        if params.mode == "adversarial" or not _has_dep(ddg, last, first):
            ddg.add_dep(last, first, distance=distance, kind="carried")
    # Adversarial multi-edges: duplicate sampled dependences with a
    # different latency override (parallel edges are legal DDG inputs
    # and must survive serialization, canonicalization and the ILP).
    if params.multi_edge_prob > 0 and ddg.deps:
        for dep in list(ddg.deps):
            if rng.random() < params.multi_edge_prob:
                ddg.add_dep(
                    dep.src, dep.dst, distance=dep.distance,
                    kind="dup",
                    latency=rng.randint(1, params.max_distance),
                )
    return ddg
