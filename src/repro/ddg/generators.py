"""Synthetic loop generators.

The paper's corpus — 1066 loop DDGs emitted by the McGill testbed compiler
from SPEC92 / NAS / linpack / livermore — is not available, so
:func:`suite1066` generates a seeded, reproducible stand-in calibrated to
the aggregate statistics Table 4 reports: predominantly small loops (the
735 loops scheduled at ``T_lb`` average 6 nodes) with a tail of larger
bodies (16–17 node averages for the harder buckets).

Structure guarantees:

* every generated DDG is connected (a random spanning arborescence plus
  extra forward edges),
* every cycle carries distance >= 1 (back edges get distance >= 1), so a
  periodic schedule always exists,
* op classes are drawn from a weighted mix over the target machine's
  classes, mirroring a scalar-code profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ddg.errors import DdgError
from repro.ddg.graph import Ddg
from repro.machine import Machine

#: Instruction-class mix for PowerPC-604-style scalar loop code.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "load": 0.22,
    "store": 0.10,
    "add": 0.16,
    "logical": 0.04,
    "shift": 0.04,
    "cmp": 0.04,
    "mul": 0.03,
    "fadd": 0.18,
    "fmul": 0.16,
    "div": 0.015,
    "fdiv": 0.015,
}


@dataclass
class GeneratorConfig:
    """Tunable knobs for :func:`random_ddg`."""

    min_ops: int = 2
    max_ops: int = 40
    #: Geometric-tail parameter for sizes; mean size ~= min_ops + (1-p)/p.
    size_p: float = 0.22
    #: Probability of each extra forward (intra-iteration) edge.
    edge_prob: float = 0.15
    #: Expected number of loop-carried back edges per loop.
    recurrences: float = 1.0
    #: Probability that a recurrence is a self-loop (accumulator).
    self_loop_prob: float = 0.4
    max_distance: int = 3
    class_weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )


def _sample_size(rng: random.Random, config: GeneratorConfig) -> int:
    size = config.min_ops
    while size < config.max_ops and rng.random() > config.size_p:
        size += 1
    return size


def _usable_weights(machine: Machine, config: GeneratorConfig) -> Dict[str, float]:
    weights = {
        cls: w for cls, w in config.class_weights.items()
        if cls in machine.op_classes
    }
    if not weights:
        raise DdgError(
            "none of the configured op classes exist on the machine"
        )
    return weights


def random_ddg(
    rng: random.Random,
    machine: Machine,
    config: Optional[GeneratorConfig] = None,
    name: str = "synthetic",
    num_ops: Optional[int] = None,
) -> Ddg:
    """Generate one synthetic loop DDG valid on ``machine``."""
    config = config or GeneratorConfig()
    weights = _usable_weights(machine, config)
    classes = list(weights)
    cum = list(weights.values())
    n = num_ops if num_ops is not None else _sample_size(rng, config)
    if n < 1:
        raise DdgError("num_ops must be >= 1")

    ddg = Ddg(name)
    for i in range(n):
        op_class = rng.choices(classes, weights=cum, k=1)[0]
        ddg.add_op(f"n{i}", op_class)

    # Spanning arborescence: each op after the first depends on an earlier one.
    for j in range(1, n):
        parent = rng.randrange(j)
        ddg.add_dep(parent, j)
    # Extra forward edges.
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < config.edge_prob / max(1, (j - i)):
                if not _has_dep(ddg, i, j):
                    ddg.add_dep(i, j)
    # Loop-carried recurrences (back edges with distance >= 1).
    expected = config.recurrences
    while expected > 0:
        if expected < 1 and rng.random() > expected:
            break
        expected -= 1
        distance = rng.randint(1, config.max_distance)
        if n == 1 or rng.random() < config.self_loop_prob:
            node = rng.randrange(n)
            if not _has_dep(ddg, node, node):
                ddg.add_dep(node, node, distance=distance)
        else:
            dst = rng.randrange(n - 1)
            src = rng.randrange(dst + 1, n)
            if not _has_dep(ddg, src, dst):
                ddg.add_dep(src, dst, distance=distance, kind="carried")
    return ddg


def _has_dep(ddg: Ddg, src: int, dst: int) -> bool:
    return any(d.src == src and d.dst == dst for d in ddg.deps)


def suite(
    count: int,
    machine: Machine,
    seed: int = 604,
    config: Optional[GeneratorConfig] = None,
) -> List[Ddg]:
    """A reproducible suite of ``count`` synthetic loops."""
    rng = random.Random(seed)
    config = config or GeneratorConfig()
    return [
        random_ddg(rng, machine, config, name=f"loop{i:04d}")
        for i in range(count)
    ]


def suite1066(machine: Machine, seed: int = 604) -> List[Ddg]:
    """The Table 4 / Table 5 stand-in corpus: 1066 loops."""
    return suite(1066, machine, seed=seed)
