"""Textual renderings of DDGs (Figure 1-style displays)."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.ddg.graph import Ddg

if TYPE_CHECKING:
    from repro.machine import Machine


def ascii_ddg(ddg: Ddg, machine: Optional["Machine"] = None) -> str:
    """One line per op with its outgoing dependences.

    Example output::

        loop motivating (6 ops, 6 deps)
          i0: load (lat 3) -> i2[m=0]
          i2: fadd (lat 2) -> i3[m=0], i2[m=1]
    """
    header = f"loop {ddg.name} ({ddg.num_ops} ops, {ddg.num_deps} deps)"
    lines = [header]
    for op in ddg.ops:
        latency = ""
        if machine is not None:
            latency = f" (lat {machine.latency(op.op_class)})"
        outs = [
            f"{ddg.ops[d.dst].name}[m={d.distance}]"
            for d in ddg.deps
            if d.src == op.index
        ]
        arrow = f" -> {', '.join(outs)}" if outs else ""
        lines.append(f"  {op.name}: {op.op_class}{latency}{arrow}")
    return "\n".join(lines)


def to_dot(ddg: Ddg, machine: Optional["Machine"] = None) -> str:
    """Graphviz dot source; loop-carried edges are dashed and labelled."""
    lines = [f'digraph "{ddg.name}" {{', "  rankdir=TB;"]
    for op in ddg.ops:
        label = f"{op.name}\\n{op.op_class}"
        if machine is not None:
            label += f" (d={machine.latency(op.op_class)})"
        lines.append(f'  {op.index} [label="{label}"];')
    for dep in ddg.deps:
        attrs = []
        if dep.distance > 0:
            attrs.append(f'label="m={dep.distance}"')
            attrs.append("style=dashed")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {dep.src} -> {dep.dst}{attr_text};")
    lines.append("}")
    return "\n".join(lines)
