"""Canonical DDG forms: digests invariant to naming and statement order.

Real corpora repeat loop bodies almost verbatim — the same compiler
idiom shows up in many files with different variable names, and the ops
and dependence edges land in whatever order the frontend emitted them.
A cache keyed on the literal text serialization misses all of those.
This module computes a *canonical* form instead:

1. **Iterative neighborhood refinement** (Weisfeiler–Lehman style):
   every op starts labeled by its instruction class, then repeatedly
   absorbs the sorted multiset of its in/out edge signatures
   ``(distance, latency-override)`` together with the neighbor labels,
   until the label partition stabilizes.  Isomorphic graphs produce
   identical label multisets; most non-isomorphic ones separate here.
2. **Deterministic relabeling by minimal code**: ops are placed one at
   a time, always choosing the candidate whose ``(refined label,
   sorted adjacency to already-placed ops)`` key is smallest; ties are
   resolved by branching and keeping the lexicographically smallest
   complete code — the classic minimum-code canonicalization, so two
   isomorphic DDGs always map to the *same* canonical text and two
   graphs with equal canonical text are genuinely isomorphic.

The canonical text deliberately drops everything scheduling-irrelevant:
loop and op *names* and the free-form dependence ``kind`` label (only
``distance`` and the optional latency override enter the constraints —
see :meth:`repro.ddg.graph.Ddg.dep_latencies`).  Machine-dependent op
latencies stay out of the picture because nodes carry their op class and
the machine is digested separately.

The branching search is exponential only for highly symmetric graphs
(e.g. many identical, completely disconnected ops); a placement budget
guards against that, falling back to a name-sensitive ``raw-`` digest
that can never produce a false cache hit — a pathological loop body just
caches less aggressively.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ddg.errors import DdgError
from repro.ddg.graph import Ddg

#: DFS placements allowed before canonicalization gives up (see module
#: docstring); generously above anything a realistic loop body needs.
SEARCH_BUDGET = 50_000

#: Sentinel for "no latency override" in edge signatures and canonical
#: text (real overrides are >= 0).
_NO_LATENCY = -1


class CanonicalizationError(DdgError):
    """The canonical-order search exceeded its budget."""


def _edge_sig(dep) -> Tuple[int, int]:
    lat = _NO_LATENCY if dep.latency is None else dep.latency
    return (dep.distance, lat)


def refine_labels(ddg: Ddg) -> List[str]:
    """Stable per-op labels from iterative neighborhood refinement.

    Invariant to op naming and edge order: labels depend only on each
    op's class and the structure around it.  Ops that end up with equal
    labels are either automorphic or WL-indistinguishable; the search in
    :func:`canonical_order` finishes the job either way.
    """
    n = ddg.num_ops
    labels = [f"class:{op.op_class}" for op in ddg.ops]
    outs: List[List[Tuple[Tuple[int, int], int]]] = [[] for _ in range(n)]
    ins: List[List[Tuple[Tuple[int, int], int]]] = [[] for _ in range(n)]
    for dep in ddg.deps:
        sig = _edge_sig(dep)
        outs[dep.src].append((sig, dep.dst))
        ins[dep.dst].append((sig, dep.src))
    distinct = len(set(labels))
    for _ in range(n):
        blobs = []
        for i in range(n):
            out_sig = sorted((sig, labels[j]) for sig, j in outs[i])
            in_sig = sorted((sig, labels[j]) for sig, j in ins[i])
            blobs.append(repr((labels[i], out_sig, in_sig)))
        labels = [
            hashlib.sha256(blob.encode("utf-8")).hexdigest()
            for blob in blobs
        ]
        now = len(set(labels))
        if now == distinct or now == n:
            break
        distinct = now
    return labels


def canonical_order(ddg: Ddg, budget: int = SEARCH_BUDGET) -> List[int]:
    """Canonical op order: position ``p`` holds original index ``order[p]``.

    Isomorphic DDGs yield orders that serialize to identical canonical
    text.  Raises :class:`CanonicalizationError` when the tie-branching
    search exceeds ``budget`` placements.
    """
    n = ddg.num_ops
    if n == 0:
        raise DdgError("cannot canonicalize an empty DDG")
    if n == 1:
        return [0]
    labels = refine_labels(ddg)
    adj: List[List[Tuple[int, int, Tuple[int, int]]]] = [
        [] for _ in range(n)
    ]
    for dep in ddg.deps:
        sig = _edge_sig(dep)
        adj[dep.src].append((dep.dst, 0, sig))
        adj[dep.dst].append((dep.src, 1, sig))

    best_code: Optional[list] = None
    best_order: Optional[List[int]] = None
    remaining = [budget]

    def key_of(c: int, pos_of: Dict[int, int], next_pos: int):
        links = []
        for other, direction, sig in adj[c]:
            if other == c:
                links.append((next_pos, direction, sig))
            else:
                pos = pos_of.get(other)
                if pos is not None:
                    links.append((pos, direction, sig))
        return (labels[c], tuple(sorted(links)))

    def dfs(order: List[int], pos_of: Dict[int, int], code: list) -> None:
        nonlocal best_code, best_order
        remaining[0] -= 1
        if remaining[0] < 0:
            raise CanonicalizationError(
                f"canonical-order search budget exceeded for "
                f"{ddg.name!r} ({n} ops) — graph too symmetric"
            )
        level = len(order)
        if level == n:
            if best_code is None or code < best_code:
                best_code = list(code)
                best_order = list(order)
            return
        keys = {
            c: key_of(c, pos_of, level)
            for c in range(n)
            if c not in pos_of
        }
        low = min(keys.values())
        code.append(low)
        # Prune branches whose code prefix is already beaten.
        if best_code is None or code <= best_code[: len(code)]:
            for c in sorted(c for c, key in keys.items() if key == low):
                order.append(c)
                pos_of[c] = level
                dfs(order, pos_of, code)
                del pos_of[c]
                order.pop()
        code.pop()

    dfs([], {}, [])
    assert best_order is not None
    return best_order


def canonical_text(ddg: Ddg, order: Optional[List[int]] = None) -> str:
    """Canonical serialization under ``order`` (computed if omitted).

    Uses the :mod:`repro.ddg.builders` text format with positional op
    names (``o0``, ``o1``, ...), sorted dependence lines, a fixed loop
    name and the ``kind`` field collapsed to ``.`` — so it round-trips
    through :func:`repro.ddg.builders.parse_ddg` for inspection while
    carrying zero naming or ordering noise.
    """
    if order is None:
        order = canonical_order(ddg)
    pos = {old: p for p, old in enumerate(order)}
    lines = ["loop canonical"]
    for p, old in enumerate(order):
        lines.append(f"op o{p} {ddg.ops[old].op_class}")
    dep_lines = sorted(
        (pos[dep.src], pos[dep.dst], dep.distance,
         _NO_LATENCY if dep.latency is None else dep.latency)
        for dep in ddg.deps
    )
    for src, dst, distance, latency in dep_lines:
        if latency == _NO_LATENCY:
            lines.append(f"dep o{src} o{dst} {distance}")
        else:
            lines.append(f"dep o{src} o{dst} {distance} . {latency}")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class CanonicalForm:
    """A DDG's canonical identity.

    ``order`` maps canonical position to original op index, so payloads
    stored in canonical order transfer onto any isomorphic DDG.  When
    the search fell back (``fallback=True``), ``text`` is the literal
    name-sensitive serialization, ``digest`` carries a ``raw-`` prefix
    (so it can never collide with a canonical digest) and ``order`` is
    the identity — equality of fallback texts still implies the graphs
    are identical, just not isomorphism-invariantly so.
    """

    digest: str
    text: str
    order: List[int]
    fallback: bool = False


def canonical_form(ddg: Ddg) -> CanonicalForm:
    """Compute the canonical identity of ``ddg`` (with safe fallback)."""
    try:
        order = canonical_order(ddg)
    except CanonicalizationError:
        from repro.ddg.builders import serialize_ddg

        text = serialize_ddg(ddg)
        digest = "raw-" + hashlib.sha256(
            text.encode("utf-8")
        ).hexdigest()
        return CanonicalForm(
            digest=digest, text=text, order=list(range(ddg.num_ops)),
            fallback=True,
        )
    text = canonical_text(ddg, order)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return CanonicalForm(digest=digest, text=text, order=order)


def canonical_digest(ddg: Ddg) -> str:
    """Naming/order-invariant content digest (see :func:`canonical_form`)."""
    return canonical_form(ddg).digest
