"""Emission of overlapped-iteration listings and symbolic assembly."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.schedule import Schedule


def flat_listing(schedule: Schedule, iterations: int = 4) -> str:
    """Table 1/2-style listing: rows = cycles, columns = iterations.

    Cell ``(cycle, j)`` holds the ops of iteration ``j`` issued at that
    absolute cycle.
    """
    t_period = schedule.t_period
    horizon = (iterations - 1) * t_period + schedule.span
    grid: Dict[Tuple[int, int], List[str]] = {}
    for j in range(iterations):
        for op in schedule.ddg.ops:
            cycle = j * t_period + schedule.starts[op.index]
            grid.setdefault((cycle, j), []).append(op.name)

    col_width = max(
        [8] + [len(" ".join(v)) + 2 for v in grid.values()]
    )
    header = "Time | " + "".join(
        f"Iter {j:<{col_width - 5}}" for j in range(iterations)
    )
    lines = [header, "-" * len(header)]
    for cycle in range(horizon):
        cells = []
        any_content = False
        for j in range(iterations):
            ops = grid.get((cycle, j))
            text = " ".join(ops) if ops else ""
            if ops:
                any_content = True
            cells.append(f"{text:<{col_width}}")
        if any_content:
            lines.append(f"{cycle:>4} | " + "".join(cells))
    return "\n".join(lines)


@dataclass
class PipelineSections:
    """Cycle ranges of the three phases of the pipelined loop."""

    prolog_cycles: Tuple[int, int]   # [start, end)
    kernel_cycles: Tuple[int, int]   # one period
    epilog_span: int                 # drain length after the last kernel

    @property
    def prolog_length(self) -> int:
        return self.prolog_cycles[1] - self.prolog_cycles[0]


def pipeline_sections(schedule: Schedule) -> PipelineSections:
    """Split the steady-state execution into prolog / kernel / epilog.

    With ``S = max(K) + 1`` software stages, the kernel (repetitive
    pattern) is reached once ``S - 1`` iterations are in flight: cycles
    ``[(S-1)*T, S*T)``; everything before is prolog, and the drain of the
    final ``S - 1`` iterations is the epilog.
    """
    stages = schedule.num_software_stages
    t_period = schedule.t_period
    kernel_start = (stages - 1) * t_period
    epilog = max(0, schedule.span - t_period)
    return PipelineSections(
        prolog_cycles=(0, kernel_start),
        kernel_cycles=(kernel_start, kernel_start + t_period),
        epilog_span=epilog,
    )


def emit_assembly(
    schedule: Schedule,
    trip_count_symbol: str = "N",
    allocation=None,
) -> str:
    """Symbolic assembly with PROLOG / KERNEL / EPILOG sections.

    Ops are annotated ``[j+k]`` with the iteration (relative to the
    kernel's newest in-flight iteration) they belong to, and with the
    physical FU carrying them.

    With ``allocation`` (a :class:`repro.registers.RegisterAllocation`)
    destination registers are annotated and the kernel is emitted
    modulo-variable-expanded: ``allocation.unroll`` copies, each with
    its own register names, exactly what a rotating-register-free code
    generator must produce.
    """
    sections = pipeline_sections(schedule)
    stages = schedule.num_software_stages
    t_period = schedule.t_period
    lines = [
        f"; loop {schedule.ddg.name}: T={t_period}, "
        f"{stages} software stage(s), trip count {trip_count_symbol}",
    ]
    producers = set()
    if allocation is not None:
        producers = {value.producer for value in allocation.ranges}
        lines.append(
            f"; {allocation.num_registers} register(s), kernel "
            f"unrolled x{allocation.unroll} (modulo variable expansion)"
        )

    def dest(op_index: int, copy: int) -> str:
        if allocation is None or op_index not in producers:
            return ""
        return f" ->{allocation.register_name(op_index, copy)}"

    def ops_at(cycle: int, max_iteration: int) -> List[str]:
        out = []
        for j in range(max_iteration + 1):
            for op in schedule.ddg.ops:
                if j * t_period + schedule.starts[op.index] == cycle:
                    copy = 0 if allocation is None else (
                        j % allocation.unroll
                    )
                    out.append(
                        f"{op.name}[j+{j}] "
                        f"@{schedule.fu_label(op.index)}"
                        f"{dest(op.index, copy)}"
                    )
        return out

    lines.append("PROLOG:")
    for cycle in range(*sections.prolog_cycles):
        issued = ops_at(cycle, stages - 1)
        lines.append(f"  {cycle:>3}: " + ("; ".join(issued) or "nop"))

    unroll = 1 if allocation is None else allocation.unroll
    repeat = f"({trip_count_symbol} - {stages - 1}) / {unroll}" if (
        unroll > 1
    ) else f"{trip_count_symbol} - {stages - 1}"
    lines.append(f"KERNEL:  ; repeat {repeat} times")
    for copy in range(unroll):
        if unroll > 1:
            lines.append(f" .copy {copy}:")
        for slot, entries in enumerate(schedule.kernel_rows()):
            rendered = []
            for entry, op in _entries_with_ops(schedule, slot):
                stage_tag = entry.replace("(+", "[j-").replace(")", "]")
                rendered.append(stage_tag + dest(op, copy))
            text = "; ".join(rendered) or "nop"
            lines.append(f"  t={slot}: {text}")

    lines.append("EPILOG:")
    lines.append(
        f"  ; drain {stages - 1} in-flight iteration(s), "
        f"{sections.epilog_span} cycle(s)"
    )
    return "\n".join(lines)


def _entries_with_ops(schedule: Schedule, slot: int):
    """Kernel-row entries at ``slot`` paired with their op indices."""
    pairs = []
    for op in schedule.ddg.ops:
        if schedule.starts[op.index] % schedule.t_period != slot:
            continue
        stage = schedule.starts[op.index] // schedule.t_period
        entry = f"{op.name}/{schedule.fu_label(op.index)}(+{stage})"
        pairs.append((entry, op.index))
    return pairs
