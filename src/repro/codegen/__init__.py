"""Symbolic code emission: prolog / repetitive pattern / epilog.

Turns a :class:`repro.core.Schedule` into the overlapped-iteration
listings of the paper's Tables 1–2 and into a symbolic assembly form with
PROLOG / KERNEL / EPILOG sections.
"""

from repro.codegen.emit import emit_assembly, flat_listing, pipeline_sections

__all__ = ["emit_assembly", "flat_listing", "pipeline_sections"]
