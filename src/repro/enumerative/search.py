"""DFS search for fixed-mapping modulo schedules at a given period.

Decision variables per op: the pattern offset ``p_i in [0, T)`` and the
physical FU copy.  Once every offset is fixed, start times are
``t_i = p_i + T * k_i`` and each dependence ``(i -> j, m, sep)`` becomes
an integer difference constraint

    k_j - k_i >= ceil((sep - T*m + p_i - p_j) / T)

whose feasibility (no positive cycle) is checked incrementally on the
assigned subgraph after every assignment — infeasible prefixes are cut
immediately.  Resource legality is maintained exactly with per-unit
modulo reservation tables.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.bounds import lower_bounds, modulo_feasible_t
from repro.core.schedule import Schedule
from repro.core.verify import verify_schedule
from repro.ddg.graph import Ddg
from repro.machine import Machine


@dataclass
class _PeriodOutcome:
    """Result of :func:`search_at_period`."""

    feasible: Optional[bool]  # None = budget exhausted
    schedule: Optional[Schedule]
    nodes: int
    seconds: float


@dataclass
class EnumerationResult:
    """Result of the enumerative driver (mirrors SchedulingResult)."""

    loop_name: str
    t_lb: int
    achieved_t: Optional[int]
    schedule: Optional[Schedule]
    nodes: int
    seconds: float
    proven: bool  # every smaller admissible T exhausted as infeasible

    @property
    def delta_from_lb(self) -> Optional[int]:
        if self.achieved_t is None:
            return None
        return self.achieved_t - self.t_lb


class _Searcher:
    def __init__(self, ddg: Ddg, machine: Machine, t_period: int,
                 deadline: Optional[float]) -> None:
        self.ddg = ddg
        self.machine = machine
        self.t_period = t_period
        self.deadline = deadline
        self.nodes = 0
        self.timed_out = False
        n = ddg.num_ops
        self.offset: List[Optional[int]] = [None] * n
        self.color: List[Optional[int]] = [None] * n
        # occupancy[(fu, copy)] -> set of (stage, slot)
        self.occupancy: Dict[Tuple[str, int], set] = {}
        self.separations = ddg.dep_latencies(machine)
        # Adjacency for the incremental dependence check.
        self.edges = list(zip(ddg.deps, self.separations))
        self.order = self._variable_order()
        self.footprints = [
            machine.reservation_for(op.op_class).usage_offsets()
            for op in ddg.ops
        ]
        self.fu_of = [
            machine.fu_type_of(op.op_class) for op in ddg.ops
        ]
        self.opened: Dict[str, int] = {}  # units opened per type

    def _variable_order(self) -> List[int]:
        """Most-constrained first: heavy resource users, then degree."""
        def weight(i: int) -> Tuple[int, int, int]:
            table = self.machine.reservation_for(self.ddg.ops[i].op_class)
            degree = sum(
                1 for d in self.ddg.deps if d.src == i or d.dst == i
            )
            return (
                -int(table.matrix.sum()),
                -degree,
                i,
            )
        return sorted(range(self.ddg.num_ops), key=weight)

    # -- pruning ------------------------------------------------------------------
    def _dependences_feasible(self) -> bool:
        """Bellman–Ford positive-cycle check on the assigned subgraph."""
        assigned = [i for i in range(self.ddg.num_ops)
                    if self.offset[i] is not None]
        if not assigned:
            return True
        index = {op: pos for pos, op in enumerate(assigned)}
        arcs = []
        t_period = self.t_period
        for dep, sep in self.edges:
            if (self.offset[dep.src] is None
                    or self.offset[dep.dst] is None):
                continue
            numerator = (sep - t_period * dep.distance
                         + self.offset[dep.src] - self.offset[dep.dst])
            bound = math.ceil(numerator / t_period)
            if dep.src == dep.dst:
                if bound > 0:
                    return False
                continue
            arcs.append((index[dep.src], index[dep.dst], bound))
        count = len(assigned)
        dist = [0] * count
        for _ in range(count):
            changed = False
            for u, v, w in arcs:
                if dist[u] + w > dist[v]:
                    dist[v] = dist[u] + w
                    changed = True
            if not changed:
                return True
        return not changed

    def _k_vector(self) -> List[int]:
        """Longest-path potentials = minimal K once all offsets fixed."""
        n = self.ddg.num_ops
        t_period = self.t_period
        dist = [0] * n
        for _ in range(n):
            changed = False
            for dep, sep in self.edges:
                numerator = (sep - t_period * dep.distance
                             + self.offset[dep.src] - self.offset[dep.dst])
                bound = math.ceil(numerator / t_period)
                if dep.src == dep.dst:
                    continue
                if dist[dep.src] + bound > dist[dep.dst]:
                    dist[dep.dst] = dist[dep.src] + bound
                    changed = True
            if not changed:
                break
        base = min(dist)
        return [d - base for d in dist]

    # -- search --------------------------------------------------------------------
    def run(self) -> Optional[Schedule]:
        if self._dfs(0):
            k_vector = self._k_vector()
            starts = [
                self.offset[i] + self.t_period * k_vector[i]
                for i in range(self.ddg.num_ops)
            ]
            colors = {i: self.color[i] for i in range(self.ddg.num_ops)}
            return Schedule(
                ddg=self.ddg, machine=self.machine,
                t_period=self.t_period, starts=starts, colors=colors,
            )
        return None

    def _dfs(self, depth: int) -> bool:
        if self.deadline is not None and self.nodes % 256 == 0:
            if time.monotonic() > self.deadline:
                self.timed_out = True
                return False
        if depth == len(self.order):
            return True
        op_index = self.order[depth]
        fu = self.fu_of[op_index]
        opened = self.opened.get(fu.name, 0)
        color_limit = min(fu.count, opened + 1)
        for offset in range(self.t_period):
            cells = [
                (stage, (offset + cycle) % self.t_period)
                for stage, cycle in self.footprints[op_index]
            ]
            for copy in range(color_limit):
                board = self.occupancy.setdefault((fu.name, copy), set())
                if any(cell in board for cell in cells):
                    continue
                self.nodes += 1
                board.update(cells)
                self.offset[op_index] = offset
                self.color[op_index] = copy
                previous_opened = self.opened.get(fu.name, 0)
                self.opened[fu.name] = max(previous_opened, copy + 1)
                if self._dependences_feasible() and self._dfs(depth + 1):
                    return True
                self.opened[fu.name] = previous_opened
                self.offset[op_index] = None
                self.color[op_index] = None
                board.difference_update(cells)
                if self.timed_out:
                    return False
        return False


def search_at_period(
    ddg: Ddg,
    machine: Machine,
    t_period: int,
    time_limit: Optional[float] = None,
) -> _PeriodOutcome:
    """Exact search at one period; verifies any schedule it returns."""
    start_clock = time.monotonic()
    deadline = None if time_limit is None else start_clock + time_limit
    searcher = _Searcher(ddg, machine, t_period, deadline)
    schedule = searcher.run()
    seconds = time.monotonic() - start_clock
    if schedule is not None:
        verify_schedule(schedule)
        return _PeriodOutcome(True, schedule, searcher.nodes, seconds)
    if searcher.timed_out:
        return _PeriodOutcome(None, None, searcher.nodes, seconds)
    return _PeriodOutcome(False, None, searcher.nodes, seconds)


def enumerative_schedule_loop(
    ddg: Ddg,
    machine: Machine,
    time_limit_per_t: Optional[float] = 30.0,
    max_extra: int = 10,
) -> EnumerationResult:
    """Rate-optimal driver over the exhaustive search (cf. schedule_loop)."""
    ddg.validate_against(machine)
    bounds = lower_bounds(ddg, machine)
    nodes = 0
    seconds = 0.0
    proven = True
    for t_period in range(bounds.t_lb, bounds.t_lb + max_extra + 1):
        if not modulo_feasible_t(ddg, machine, t_period):
            continue
        outcome = search_at_period(
            ddg, machine, t_period, time_limit=time_limit_per_t
        )
        nodes += outcome.nodes
        seconds += outcome.seconds
        if outcome.feasible:
            return EnumerationResult(
                loop_name=ddg.name,
                t_lb=bounds.t_lb,
                achieved_t=t_period,
                schedule=outcome.schedule,
                nodes=nodes,
                seconds=seconds,
                proven=proven,
            )
        if outcome.feasible is None:
            proven = False  # budget ran out; larger T may still work
    return EnumerationResult(
        loop_name=ddg.name,
        t_lb=bounds.t_lb,
        achieved_t=None,
        schedule=None,
        nodes=nodes,
        seconds=seconds,
        proven=False,
    )
