"""Exhaustive combinatorial scheduling + mapping.

The paper's conclusion poses an open question: *"will cleverly designed
exhaustive search methods be superior to an ILP solver in terms of
efficiency? Although we have lately been working on exploiting such
alternatives [2], it is still too early to make a conclusion."*
(Reference [2] is Altman's thesis, "Two Approaches for Optimal Software
Pipelining with Resource Constraints".)

This package implements the second approach: a depth-first search over
(pattern offset, physical FU) assignments with

* per-unit modulo-reservation-table pruning (resource/mapping conflicts
  rejected as soon as they appear),
* incremental dependence-feasibility pruning — with offsets fixed, the
  remaining ``K`` vector exists iff an integer difference-constraint
  system has no positive cycle (Bellman–Ford),
* color symmetry breaking (a new physical unit may only be opened in
  index order), and
* a most-constrained-first variable order.

It is exact: for a given ``T`` it reports feasible (with a verified
schedule) or infeasible, so it can replace the ILP inside the
rate-optimal driver.  Experiment E15 races the two, answering the
paper's question on this corpus.
"""

from repro.enumerative.search import (
    EnumerationResult,
    enumerative_schedule_loop,
    search_at_period,
)

__all__ = [
    "EnumerationResult",
    "enumerative_schedule_loop",
    "search_at_period",
]
