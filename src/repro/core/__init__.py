"""The paper's contribution: unified ILP scheduling + mapping.

* :mod:`repro.core.periodic` — the linear periodic schedule form
  ``T = T*K + A' * [0..T-1]'`` (paper Eq. 1/7/22).
* :mod:`repro.core.bounds` — ``T_dep``, ``T_res``, ``T_lb`` and the
  modulo-scheduling-constraint filter on candidate periods.
* :mod:`repro.core.formulation` — the ILP: basic clean-pipeline form [9],
  non-pipelined extension (§4.1), circular-arc-coloring mapping (§4.2),
  reservation-table structural hazards (§5), optional objectives.
* :mod:`repro.core.scheduler` — the driver that sweeps ``T`` upward from
  ``T_lb`` until the ILP is feasible (rate-optimal by construction).
* :mod:`repro.core.schedule` / :mod:`repro.core.verify` — the resulting
  schedule object and an independent validity checker.
"""

from repro.core.bounds import LowerBounds, lower_bounds, modulo_feasible_t, t_res
from repro.core.errors import (
    CoreError,
    MappingError,
    ModuloInfeasibleError,
    SchedulingError,
    VerificationError,
)
from repro.core.explain import Diagnosis, Reason, explain_infeasibility
from repro.core.formulation import Formulation, FormulationOptions
from repro.core.schedule import Schedule
from repro.core.scheduler import (
    HEURISTIC,
    AttemptConfig,
    AttemptOutcome,
    ScheduleAttempt,
    SchedulingResult,
    WarmStartStats,
    attempt_period,
    run_sweep,
    schedule_loop,
)
from repro.core.verify import verify_schedule
from repro.core.warmstart import WarmStart, compute_warmstart, warmstart_assignment

__all__ = [
    "AttemptConfig",
    "AttemptOutcome",
    "attempt_period",
    "CoreError",
    "Diagnosis",
    "Reason",
    "explain_infeasibility",
    "Formulation",
    "FormulationOptions",
    "LowerBounds",
    "ModuloInfeasibleError",
    "Schedule",
    "ScheduleAttempt",
    "SchedulingError",
    "SchedulingResult",
    "VerificationError",
    "HEURISTIC",
    "WarmStart",
    "WarmStartStats",
    "compute_warmstart",
    "lower_bounds",
    "modulo_feasible_t",
    "run_sweep",
    "schedule_loop",
    "t_res",
    "verify_schedule",
    "warmstart_assignment",
]
