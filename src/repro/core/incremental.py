"""Incremental solver core: state shared across a T-sweep.

The §6 driver solves a *sequence* of near-identical instances — the same
(ddg, machine) at T, T+1, … — yet the cold path re-derives everything
per attempt.  This module holds the three kinds of state that survive a
period bump, each with an explicit validity rule:

**LoopAnalysis** — products of the (ddg, machine) pair alone, valid for
every T: dependence separations, parallel-edge Pareto frontiers (so the
per-T collapsed edge weights are a cheap ``max`` instead of a dep scan),
op grouping by FU type, coloring-need per type, reservation stage
cycles, raw pair stage-offset difference sets (the per-T interference
sets are their residues mod T), and the per-type resource floors.
Consumers (:func:`repro.core.presolve.presolve`,
:class:`repro.core.formulation.Formulation`) are written so that the
analysis-fed path reproduces the cold path's output *exactly* — reuse
must never change a model, only skip recomputation.

**CutPool** — infeasibility certificates that outlive the T that
produced them, each tagged with a validity predicate:

* *cycle floor* (``T < floor`` infeasible): a positive dependence cycle
  at T stays positive for every smaller T; the tight floor is ``T_dep``
  of the attempt machine.  Valid for exactly ``T' < floor``.
* *capacity floor* (``T < floor`` infeasible): the busiest reservation
  stage of some FU type needs ``ceil(uses / count)`` slot-copies; a
  counting argument over the capacity rows (each use occupies exactly
  one modulo slot-copy) makes every smaller T LP-infeasible.  Valid for
  ``T' < floor``.
* *window memo* (exact-T replay): a (machine, T, objective, k_max,
  mapping) tuple whose model was *proven* infeasible — by presolve's
  empty-window / k-range check or by a completed solver run — is
  infeasible forever; the memo replays the verdict on any retry of the
  same tuple (supervision retries, duplicate corpus loops, repeated
  sweeps).

Cuts are only consulted where the cold path reaches the same verdict
deterministically (see :meth:`CutPool.consult`), which is what keeps the
incremental-on/off differential byte-identical.

**SweepContext** — one loop's bundle of the above plus reuse counters.
Contexts live in a per-process registry keyed by content digests, so the
sequential sweep, every race worker, and every supervised worker each
self-serve their own context without anything crossing a pickle
boundary (the same pattern as :mod:`repro.parallel.cache`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ddg.graph import Ddg
from repro.machine import Machine

#: Cut kinds (the ``model_stats["cut_skip"]`` marker values).
CYCLE_FLOOR, CAPACITY_FLOOR, WINDOW_MEMO = (
    "cycle_floor", "capacity_floor", "window_memo",
)


class LoopAnalysis:
    """T-independent products of one (ddg, machine) pair.

    Everything here is derived once and read by every attempt of the
    sweep; nothing depends on the candidate period.
    """

    def __init__(self, ddg: Ddg, machine: Machine) -> None:
        import time

        start = time.monotonic()
        self.ddg = ddg
        self.machine = machine
        #: Per-dep-edge separations (latency overrides applied).
        self.dep_latencies: List[int] = list(ddg.dep_latencies(machine))
        #: Pareto frontier of parallel edges per (src, dst), in first-
        #: occurrence order: the per-T collapsed weight is
        #: ``max(sep - T*dist)`` over the frontier, which equals the max
        #: over *all* parallel edges for every T >= 0 (a dominated edge
        #: — smaller sep, larger dist — can never win).
        self.edge_frontiers: "OrderedDict[Tuple[int, int], List[Tuple[int, int]]]" = OrderedDict()
        for e, dep in enumerate(ddg.deps):
            key = (dep.src, dep.dst)
            frontier = self.edge_frontiers.setdefault(key, [])
            sep, dist = int(self.dep_latencies[e]), int(dep.distance)
            if any(s >= sep and d <= dist for s, d in frontier):
                continue  # dominated: some kept edge is at least as strong
            frontier[:] = [
                (s, d) for s, d in frontier if not (s <= sep and d >= dist)
            ]
            frontier.append((sep, dist))
        #: Op indices per FU-type name (first-occurrence order, matching
        #: ``Formulation._ops_by_type``).
        self.ops_by_type: Dict[str, List[int]] = {}
        for op in ddg.ops:
            fu = machine.op_class(op.op_class).fu_type
            self.ops_by_type.setdefault(fu, []).append(op.index)
        #: FU types whose mapping the ILP must decide under automatic
        #: mapping resolution (``FormulationOptions.mapping=None``) and
        #: under forced mapping (``mapping=True``).
        self.coloring_auto: FrozenSet[str] = frozenset(
            fu for fu in self.ops_by_type
            if self._needs_coloring(fu, forced=False)
        )
        self.coloring_forced: FrozenSet[str] = frozenset(
            fu for fu in self.ops_by_type
            if self._needs_coloring(fu, forced=True)
        )
        #: Reservation stage cycles per (op index, stage); past-the-end
        #: stages are empty, matching ``Formulation._stage_cycles``.
        self.stage_cycles: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self.stage_count: Dict[str, int] = {
            fu: machine.stage_count(fu) for fu in self.ops_by_type
        }
        #: Per-op (stage, cycles) pairs with nonempty cycles, ascending
        #: stage order — the iteration ``Formulation._usage_terms`` runs.
        self.op_stages: Dict[int, Tuple[Tuple[int, Tuple[int, ...]], ...]] = {}
        for fu, op_indices in self.ops_by_type.items():
            for i in op_indices:
                table = machine.reservation_for(ddg.ops[i].op_class)
                used: List[Tuple[int, Tuple[int, ...]]] = []
                for s in range(self.stage_count[fu]):
                    cycles = (
                        tuple(table.stage_cycles(s))
                        if s < table.num_stages else ()
                    )
                    self.stage_cycles[(i, s)] = cycles
                    if cycles:
                        used.append((s, cycles))
                self.op_stages[i] = tuple(used)
        #: Sum of op latencies (the ``_default_k_max`` ingredient).
        self.total_latency: int = int(sum(ddg.latencies(machine)))
        #: Per-FU-type resource floor (capacity-cut source; also the
        #: presolve resource-infeasibility check).
        from repro.core.bounds import per_type_t_res

        self.per_type_t_res: Dict[str, int] = per_type_t_res(ddg, machine)
        self.t_res_floor: int = max(
            self.per_type_t_res.values(), default=1
        )
        #: Raw stage-offset difference multiset supports per colored
        #: pair+stage: the per-T offset set is ``{d % T}`` over these.
        self._pair_diffs: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}
        #: Lazily computed T_dep of this machine (cycle-floor source).
        self._t_dep: Optional[int] = None
        #: Previous attempt's pair interference verdicts per mapping
        #: option — the delta baseline for reused-row accounting.
        self.last_pair_verdicts: Dict[Optional[bool], Tuple[int, dict]] = {}
        self.seconds = time.monotonic() - start

    def _needs_coloring(self, fu_name: str, forced: bool) -> bool:
        """Mirror of ``Formulation._needs_coloring`` for mapping None/True."""
        fu = self.machine.fu_type(fu_name)
        ops_on = self.ops_by_type.get(fu_name, [])
        if len(ops_on) < 2 or fu.count < 2:
            return False
        if forced:
            return True
        return any(
            not self.machine.reservation_for(
                self.ddg.ops[i].op_class
            ).is_clean
            for i in ops_on
        )

    def collapsed_edges(self, t_period: int) -> List[Tuple[int, int, float]]:
        """Collapsed dependence edges at ``t_period``; identical output
        (values *and* order) to ``presolve._collapsed_edges``."""
        return [
            (src, dst, float(max(
                sep - t_period * dist for sep, dist in frontier
            )))
            for (src, dst), frontier in self.edge_frontiers.items()
        ]

    def pair_stage_diffs(self, i: int, j: int, stage: int) -> Tuple[int, ...]:
        """Raw ``l_i - l_j`` differences for a shared stage (cached)."""
        key = (i, j, stage)
        diffs = self._pair_diffs.get(key)
        if diffs is None:
            ci = self.stage_cycles.get((i, stage), ())
            cj = self.stage_cycles.get((j, stage), ())
            diffs = tuple(l1 - l2 for l1 in ci for l2 in cj)
            self._pair_diffs[key] = diffs
        return diffs

    def t_dep(self) -> int:
        """``T_dep`` of the analysis machine (computed once, on demand)."""
        if self._t_dep is None:
            from repro.ddg.analysis import t_dep as compute_t_dep

            self._t_dep = int(compute_t_dep(self.ddg, self.machine))
        return self._t_dep


@dataclass
class CutStats:
    """Counters for cut-pool activity in one context."""

    harvested: int = 0
    skips: Dict[str, int] = field(default_factory=dict)

    def count_skip(self, kind: str) -> None:
        self.skips[kind] = self.skips.get(kind, 0) + 1


class CutPool:
    """Infeasibility certificates with explicit validity predicates.

    Floors are per attempt-machine digest (a repaired machine is a
    different machine); memo entries additionally pin the exact model
    semantics (T, objective, k_max option, mapping).
    """

    def __init__(self) -> None:
        #: machine digest -> T floor: every T' < floor is infeasible
        #: because some dependence cycle stays positive.
        self.cycle_floors: Dict[str, int] = {}
        #: machine digest -> T floor: every T' < floor is infeasible
        #: because some reservation stage cannot fit its uses.
        self.capacity_floors: Dict[str, int] = {}
        #: Proven-infeasible exact tuples (machine digest, T, objective,
        #: k_max option, mapping) -> source ("presolve" | "solver").
        self.window_memo: Dict[tuple, str] = {}
        self.stats = CutStats()

    @staticmethod
    def _memo_key(
        machine_key: str, t_period: int, objective: str,
        k_max: Optional[int], mapping: Optional[bool],
    ) -> tuple:
        return (machine_key, t_period, objective, k_max, mapping)

    def consult(
        self,
        machine_key: str,
        t_period: int,
        objective: str,
        k_max: Optional[int],
        mapping: Optional[bool],
    ) -> Optional[str]:
        """Return the cut kind proving this attempt infeasible, or None.

        Every kind returned here corresponds to a verdict the cold path
        reaches deterministically: floors are re-detected by presolve
        (cycle check / resource-floor check) which stamps the model with
        the trivially-unsatisfiable ``presolve_infeasible`` row, and memo
        entries replay a verdict that was itself proven.  Callers gate
        consultation on ``presolve`` being enabled.
        """
        floor = self.cycle_floors.get(machine_key)
        if floor is not None and t_period < floor:
            self.stats.count_skip(CYCLE_FLOOR)
            return CYCLE_FLOOR
        floor = self.capacity_floors.get(machine_key)
        if floor is not None and t_period < floor:
            self.stats.count_skip(CAPACITY_FLOOR)
            return CAPACITY_FLOOR
        key = self._memo_key(machine_key, t_period, objective, k_max, mapping)
        if key in self.window_memo:
            self.stats.count_skip(WINDOW_MEMO)
            return WINDOW_MEMO
        return None

    def assert_floor(self, kind: str, machine_key: str, floor: int) -> None:
        """Record (or raise) a floor certificate for a machine."""
        table = (
            self.cycle_floors if kind == CYCLE_FLOOR else self.capacity_floors
        )
        if floor > table.get(machine_key, 0):
            table[machine_key] = floor
            self.stats.harvested += 1

    def memoize_infeasible(
        self,
        machine_key: str,
        t_period: int,
        objective: str,
        k_max: Optional[int],
        mapping: Optional[bool],
        source: str,
    ) -> None:
        key = self._memo_key(machine_key, t_period, objective, k_max, mapping)
        if key not in self.window_memo:
            self.window_memo[key] = source
            self.stats.harvested += 1


@dataclass
class ContextStats:
    """Reuse counters for one sweep context (diagnostics / tests)."""

    analyses_built: int = 0
    analysis_hits: int = 0
    analysis_seconds: float = 0.0


class SweepContext:
    """Persistent per-loop state threaded through a T-sweep.

    Holds one :class:`LoopAnalysis` per attempt machine (the base
    machine plus any delay-repaired variants, keyed by content digest)
    and one :class:`CutPool`.  A context is created per (ddg, machine)
    content pair and lives in the per-process registry, so repeated
    sweeps over identical loops — common in synthetic corpora — reuse
    it wholesale.
    """

    #: Distinct attempt machines to keep analyses for (base + repairs).
    MAX_ANALYSES = 8

    def __init__(self, ddg: Ddg, base_machine_key: str) -> None:
        self.ddg = ddg
        self.base_machine_key = base_machine_key
        self.cuts = CutPool()
        self.stats = ContextStats()
        self._analyses: "OrderedDict[str, LoopAnalysis]" = OrderedDict()

    def analysis_for(
        self, machine: Machine, machine_key: Optional[str] = None
    ) -> LoopAnalysis:
        """The :class:`LoopAnalysis` for an attempt machine (cached)."""
        if machine_key is None:
            machine_key = _machine_key(machine)
        analysis = self._analyses.get(machine_key)
        if analysis is None:
            analysis = LoopAnalysis(self.ddg, machine)
            self._analyses[machine_key] = analysis
            self.stats.analyses_built += 1
            self.stats.analysis_seconds += analysis.seconds
            while len(self._analyses) > self.MAX_ANALYSES:
                self._analyses.popitem(last=False)
        else:
            self._analyses.move_to_end(machine_key)
            self.stats.analysis_hits += 1
        return analysis


def _machine_key(machine: Machine) -> str:
    # Late import: parallel.cache imports core modules at module scope.
    from repro.parallel.cache import machine_digest

    return machine_digest(machine)


def machine_key(machine: Machine) -> str:
    """Content digest used for context / cut-pool keying (public alias)."""
    return _machine_key(machine)


def _ddg_key(ddg: Ddg) -> str:
    from repro.parallel.cache import ddg_digest

    return ddg_digest(ddg)


#: Per-process context registry.  Bounded like the parallel caches;
#: worker processes each warm their own copy.
_MAX_CONTEXTS = 64
_CONTEXTS: "OrderedDict[Tuple[str, str], SweepContext]" = OrderedDict()
_REGISTRY_HITS = 0
_REGISTRY_MISSES = 0


def context_for(
    ddg: Ddg,
    machine: Machine,
    ddg_key: Optional[str] = None,
    machine_key: Optional[str] = None,
) -> SweepContext:
    """The process-wide :class:`SweepContext` for a (ddg, machine) pair.

    Keyed by content digests so structurally identical loops — distinct
    objects, repeated corpus entries, re-unpickled worker arguments —
    share one context.  The machine key is the *base* machine's; delay-
    repaired variants nest inside the context via :meth:`analysis_for`.
    """
    global _REGISTRY_HITS, _REGISTRY_MISSES
    if ddg_key is None:
        ddg_key = _ddg_key(ddg)
    if machine_key is None:
        machine_key = _machine_key(machine)
    key = (ddg_key, machine_key)
    context = _CONTEXTS.get(key)
    if context is None:
        context = SweepContext(ddg, machine_key)
        _CONTEXTS[key] = context
        _REGISTRY_MISSES += 1
        while len(_CONTEXTS) > _MAX_CONTEXTS:
            _CONTEXTS.popitem(last=False)
    else:
        _CONTEXTS.move_to_end(key)
        _REGISTRY_HITS += 1
    return context


def incremental_stats() -> dict:
    """Aggregate context/cut counters for this process (diagnostics)."""
    skips: Dict[str, int] = {}
    harvested = 0
    analyses_built = 0
    analysis_hits = 0
    for context in _CONTEXTS.values():
        harvested += context.cuts.stats.harvested
        for kind, count in context.cuts.stats.skips.items():
            skips[kind] = skips.get(kind, 0) + count
        analyses_built += context.stats.analyses_built
        analysis_hits += context.stats.analysis_hits
    return {
        "contexts": len(_CONTEXTS),
        "registry_hits": _REGISTRY_HITS,
        "registry_misses": _REGISTRY_MISSES,
        "analyses_built": analyses_built,
        "analysis_hits": analysis_hits,
        "cuts_harvested": harvested,
        "attempts_skipped": sum(skips.values()),
        "cut_skips": skips,
    }


def clear_contexts() -> None:
    """Drop every context (tests, or to bound memory in long runs)."""
    global _REGISTRY_HITS, _REGISTRY_MISSES
    _CONTEXTS.clear()
    _REGISTRY_HITS = 0
    _REGISTRY_MISSES = 0
