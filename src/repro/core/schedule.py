"""Schedule objects and the deterministic greedy mapper.

A :class:`Schedule` records the periodic schedule (start times under the
linear form of Eq. 1), the fixed instruction-to-FU mapping (*colors*), and
helpers to inspect both (kernel rows, per-stage modulo usage tables for
Figure 2-style displays, the T/K/A matrices of Figure 3).

:func:`greedy_mapping` assigns physical FUs by first-fit over the modulo
reservation tables.  For *clean* pipelines it always succeeds (ops
conflict only when they share a start slot, and aggregate capacity bounds
each slot's population).  For unclean pipelines it may fail even when the
aggregate counts fit — that failure is precisely the phenomenon that
motivates the paper's coloring formulation, and it is surfaced as
:class:`repro.core.errors.MappingError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import periodic
from repro.core.errors import MappingError, VerificationError
from repro.ddg.graph import Ddg
from repro.machine import Machine


def greedy_mapping(
    ddg: Ddg,
    machine: Machine,
    starts: List[int],
    t_period: int,
    partial: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """First-fit fixed FU assignment for the given start times.

    ``partial`` pins colors already chosen (e.g. by the ILP); they are
    stamped first and trusted-but-verified (a conflict raises
    :class:`VerificationError` since it means the solver lied).  Remaining
    ops are placed greedily in slot order; an op with no conflict-free FU
    copy raises :class:`MappingError`.
    """
    partial = dict(partial or {})
    occupancy: Dict[Tuple[str, int], np.ndarray] = {}

    def board(fu_name: str, copy: int) -> np.ndarray:
        key = (fu_name, copy)
        if key not in occupancy:
            stages = machine.stage_count(fu_name)
            occupancy[key] = np.zeros((stages, t_period), dtype=int)
        return occupancy[key]

    def cells(op_index: int) -> List[Tuple[int, int]]:
        op = ddg.ops[op_index]
        table = machine.reservation_for(op.op_class)
        offset = starts[op_index] % t_period
        return [
            (stage, (offset + cycle) % t_period)
            for stage, cycle in table.usage_offsets()
        ]

    def try_place(op_index: int, fu_name: str, copy: int,
                  strict: bool) -> bool:
        grid = board(fu_name, copy)
        spots = cells(op_index)
        if any(grid[s, t] for s, t in spots):
            if strict:
                raise VerificationError(
                    f"op {ddg.ops[op_index].name!r} collides on "
                    f"{fu_name}#{copy} under its pinned color"
                )
            return False
        for s, t in spots:
            grid[s, t] = 1
        return True

    for op_index, color in sorted(partial.items()):
        fu_name = machine.op_class(ddg.ops[op_index].op_class).fu_type
        try_place(op_index, fu_name, color, strict=True)

    order = sorted(
        (i for i in range(ddg.num_ops) if i not in partial),
        key=lambda i: (starts[i] % t_period, i),
    )
    colors = dict(partial)
    for op_index in order:
        fu = machine.fu_type_of(ddg.ops[op_index].op_class)
        for copy in range(fu.count):
            if try_place(op_index, fu.name, copy, strict=False):
                colors[op_index] = copy
                break
        else:
            raise MappingError(
                f"no fixed FU assignment: op {ddg.ops[op_index].name!r} "
                f"fits on none of the {fu.count} {fu.name} unit(s) at "
                f"T={t_period}"
            )
    return colors


@dataclass
class Schedule:
    """A software-pipelined schedule with fixed FU assignment.

    ``starts[i]`` is ``t_i`` (iteration ``j`` starts op ``i`` at
    ``j*T + t_i``); ``colors[i]`` is the 0-based physical copy of the
    op's FU type.  ``colors`` may be partial when the schedule was built
    by the counting-only relaxation and no mapping exists.
    """

    ddg: Ddg
    machine: Machine
    t_period: int
    starts: List[int]
    colors: Dict[int, int] = field(default_factory=dict)
    fu_counts_used: Optional[Dict[str, int]] = None

    # -- periodic form -----------------------------------------------------------
    @property
    def offsets(self) -> List[int]:
        return periodic.offsets(self.starts, self.t_period)

    @property
    def k_vector(self) -> List[int]:
        k, _ = periodic.decompose(self.starts, self.t_period)
        return k

    @property
    def a_matrix(self) -> np.ndarray:
        _, a = periodic.decompose(self.starts, self.t_period)
        return a

    @property
    def num_software_stages(self) -> int:
        """Depth of the software pipeline (max K + 1)."""
        return max(self.k_vector) + 1

    @property
    def span(self) -> int:
        """Cycles from iteration start to its last op's completion."""
        return max(
            t + self.machine.latency(op.op_class)
            for t, op in zip(self.starts, self.ddg.ops)
        )

    @property
    def has_complete_mapping(self) -> bool:
        return all(i in self.colors for i in range(self.ddg.num_ops))

    def fu_label(self, op_index: int) -> str:
        fu = self.machine.fu_type_of(self.ddg.ops[op_index].op_class)
        if op_index in self.colors:
            return f"{fu.name}{self.colors[op_index]}"
        return f"{fu.name}?"

    # -- inspection --------------------------------------------------------------------
    def kernel_rows(self) -> List[List[str]]:
        """Per-slot kernel contents: ``rows[t]`` lists ``"op/FUn(+k)"``."""
        rows: List[List[str]] = [[] for _ in range(self.t_period)]
        for op in self.ddg.ops:
            slot = self.starts[op.index] % self.t_period
            stage = self.starts[op.index] // self.t_period
            rows[slot].append(f"{op.name}/{self.fu_label(op.index)}(+{stage})")
        return rows

    def stage_usage_table(
        self, fu_name: str, copy: Optional[int] = None
    ) -> np.ndarray:
        """Modulo stage-usage counts for an FU type (Figure 2 display).

        With ``copy`` given, restrict to ops mapped to that physical unit
        — every entry must then be 0/1 for a valid schedule.  Without it,
        aggregate over all copies (entries bounded by the FU count).
        """
        stages = self.machine.stage_count(fu_name)
        grid = np.zeros((stages, self.t_period), dtype=int)
        for op in self.ddg.ops:
            cls = self.machine.op_class(op.op_class)
            if cls.fu_type != fu_name:
                continue
            if copy is not None and self.colors.get(op.index) != copy:
                continue
            table = self.machine.reservation_for(op.op_class)
            offset = self.starts[op.index] % self.t_period
            for stage, cycle in table.usage_offsets():
                grid[stage, (offset + cycle) % self.t_period] += 1
        return grid

    # -- rendering ----------------------------------------------------------------------
    def render_kernel(self) -> str:
        lines = [
            f"kernel of {self.ddg.name!r}: T={self.t_period}, "
            f"span={self.span}, stages={self.num_software_stages}"
        ]
        for t, entries in enumerate(self.kernel_rows()):
            content = "  ".join(entries) if entries else "-"
            lines.append(f"  slot {t}: {content}")
        return "\n".join(lines)

    def render_tka(self) -> str:
        """Figure 3-style T/K/A matrix rendering."""
        return periodic.format_tka(
            self.starts, self.t_period, [op.name for op in self.ddg.ops]
        )

    def render_usage(self, fu_name: str) -> str:
        """Figure 2-style per-unit stage usage tables."""
        fu = self.machine.fu_type(fu_name)
        blocks = []
        for copy in range(fu.count):
            grid = self.stage_usage_table(fu_name, copy)
            lines = [f"{fu_name}#{copy} (T={self.t_period})"]
            lines.append("          " + " ".join(f"{t:>2}" for t in range(self.t_period)))
            for stage in range(grid.shape[0]):
                row = " ".join(f"{v:>2}" for v in grid[stage])
                lines.append(f"  Stage {stage + 1} {row}")
            blocks.append("\n".join(lines))
        return "\n".join(blocks)

    # -- serialization --------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "loop": self.ddg.name,
            "t_period": self.t_period,
            "starts": list(self.starts),
            "colors": {str(k): v for k, v in self.colors.items()},
            "fu_counts_used": self.fu_counts_used,
        }

    @classmethod
    def from_dict(cls, data: dict, ddg: Ddg, machine: Machine) -> "Schedule":
        """Rebuild a schedule against its loop and machine.

        The DDG and machine are context, not payload (a schedule is
        meaningless without them); the loop name is cross-checked.
        """
        if data.get("loop") != ddg.name:
            raise VerificationError(
                f"schedule was saved for loop {data.get('loop')!r}, "
                f"not {ddg.name!r}"
            )
        starts = [int(v) for v in data["starts"]]
        if len(starts) != ddg.num_ops:
            raise VerificationError(
                f"saved schedule has {len(starts)} starts for "
                f"{ddg.num_ops} ops"
            )
        return cls(
            ddg=ddg,
            machine=machine,
            t_period=int(data["t_period"]),
            starts=starts,
            colors={int(k): int(v) for k, v in data["colors"].items()},
            fu_counts_used=data.get("fu_counts_used"),
        )

    def save_json(self, path) -> None:
        """Write the schedule to a JSON file (atomically: a crash or
        kill mid-write never leaves a truncated file at ``path``)."""
        import json

        from repro.supervision.atomicio import atomic_write_text

        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True)
        )

    @classmethod
    def load_json(cls, path, ddg: Ddg, machine: Machine) -> "Schedule":
        """Read a schedule saved by :meth:`save_json`."""
        import json

        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle), ddg, machine)

    def __repr__(self) -> str:
        return (
            f"Schedule({self.ddg.name!r}, T={self.t_period}, "
            f"starts={self.starts}, colors={self.colors})"
        )
