"""The rate-optimal scheduling driver (paper §6 procedure).

Computes ``T_lb = max(T_dep, T_res)``, then tries successive periods
(skipping those ruled out by the modulo scheduling constraint), building
and solving the unified ILP at each ``T`` under a per-period time budget.
The first feasible period yields a rate-optimal schedule *for fixed FU
assignment* — every smaller admissible period was proven infeasible.

The per-attempt body lives in :func:`attempt_period`, a module-level
function whose arguments and result are picklable, so the same code
drives both this sequential sweep and the multiprocess period racer in
:mod:`repro.parallel.race`.

The per-attempt records feed the Table 4 / Table 5 experiment harness
(how many loops schedule at ``T_lb``, ``T_lb + 2``, ... and how much
solver time each took).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.bounds import LowerBounds, lower_bounds, modulo_feasible_t
from repro.core.errors import SchedulingError
from repro.core.formulation import Formulation, FormulationOptions
from repro.core.schedule import Schedule
from repro.core.verify import verify_schedule
from repro.ddg.graph import Ddg
from repro.ilp.solution import SolveStatus
from repro.machine import Machine


@dataclass
class ScheduleAttempt:
    """One ILP solve at a candidate period."""

    t_period: int
    status: str  # SolveStatus value, or "modulo_infeasible" (skipped)
    seconds: float = 0.0
    #: :class:`repro.ilp.model.ModelStats` as a plain dict (sizes,
    #: eliminated vars/rows/nnz, per-phase seconds) — kept a dict so the
    #: attempt pickles across worker processes and serializes to JSON.
    model_stats: Dict[str, float] = field(default_factory=dict)
    nodes: int = 0
    #: True when the period was admissible only after delay insertion.
    repaired: bool = False


@dataclass
class SchedulingResult:
    """Outcome of :func:`schedule_loop`."""

    loop_name: str
    bounds: LowerBounds
    attempts: List[ScheduleAttempt]
    schedule: Optional[Schedule] = None
    total_seconds: float = 0.0

    @property
    def achieved_t(self) -> Optional[int]:
        return self.schedule.t_period if self.schedule else None

    @property
    def is_rate_optimal_proven(self) -> bool:
        """Schedule found and every smaller admissible T proven infeasible."""
        if self.schedule is None:
            return False
        for attempt in self.attempts:
            if attempt.t_period >= self.schedule.t_period:
                continue
            if attempt.status not in (
                SolveStatus.INFEASIBLE.value,
                "modulo_infeasible",
            ):
                return False
        return True

    @property
    def delta_from_lb(self) -> Optional[int]:
        """``T - T_lb`` — the quantity Table 4 buckets loops by."""
        if self.schedule is None:
            return None
        return self.schedule.t_period - self.bounds.t_lb

    def summary(self) -> str:
        t_found = self.achieved_t if self.schedule else "none"
        return (
            f"{self.loop_name}: T_dep={self.bounds.t_dep} "
            f"T_res={self.bounds.t_res} T_lb={self.bounds.t_lb} "
            f"-> T={t_found} ({self.total_seconds:.2f}s, "
            f"{len(self.attempts)} attempt(s))"
        )


@dataclass(frozen=True)
class AttemptConfig:
    """Per-attempt knobs shared by the sequential and parallel drivers.

    Frozen and free of live objects so it pickles cleanly into worker
    processes.
    """

    backend: str = "auto"
    objective: str = "feasibility"
    mapping: Optional[bool] = None
    time_limit: Optional[float] = 30.0
    verify: bool = True
    repair_modulo: bool = False
    presolve: bool = True


@dataclass
class AttemptOutcome:
    """What one call to :func:`attempt_period` produced."""

    attempt: ScheduleAttempt
    schedule: Optional[Schedule] = None


def attempt_period(
    ddg: Ddg,
    machine: Machine,
    t_period: int,
    config: Optional[AttemptConfig] = None,
    formulation_builder: Optional[
        Callable[[Ddg, Machine, int, FormulationOptions], Formulation]
    ] = None,
) -> AttemptOutcome:
    """Run the §6 procedure's body for one candidate period.

    Checks the modulo scheduling constraint (optionally repairing via
    delay insertion), builds and solves the unified ILP, and extracts +
    verifies a schedule when the solve is feasible.  Both
    :func:`schedule_loop` and :func:`repro.parallel.race.race_periods`
    funnel through here, which is what keeps their results identical.

    ``formulation_builder`` lets callers inject a memoized constructor
    (see :mod:`repro.parallel.cache`); it is an in-process hook only and
    never crosses a pickle boundary.
    """
    config = config or AttemptConfig()
    attempt_machine = machine
    repaired = False
    if not modulo_feasible_t(ddg, machine, t_period):
        patched = None
        if config.repair_modulo:
            from repro.machine.delays import delayed_machine

            patched = delayed_machine(machine, t_period)
        if patched is None:
            return AttemptOutcome(
                ScheduleAttempt(t_period=t_period, status="modulo_infeasible")
            )
        attempt_machine = patched
        repaired = True
    options = FormulationOptions(
        mapping=config.mapping, objective=config.objective,
        presolve=config.presolve,
    )
    if formulation_builder is not None and not repaired:
        formulation = formulation_builder(
            ddg, attempt_machine, t_period, options
        )
    else:
        formulation = Formulation(ddg, attempt_machine, t_period, options)
    formulation.build()
    solution = formulation.solve(
        backend=config.backend, time_limit=config.time_limit
    )
    stats = formulation.model_stats.to_dict()
    stats["lower_seconds"] = solution.lower_seconds
    stats["solve_seconds"] = solution.solve_seconds
    stats["total_seconds"] = (
        stats["presolve_seconds"] + stats["build_seconds"]
        + solution.solve_seconds
    )
    attempt = ScheduleAttempt(
        t_period=t_period,
        status=solution.status.value,
        seconds=solution.solve_seconds,
        model_stats=stats,
        nodes=solution.nodes,
        repaired=repaired,
    )
    schedule: Optional[Schedule] = None
    if solution.status.has_solution:
        require_mapping = config.mapping is not False
        schedule = formulation.extract(
            solution, require_mapping=require_mapping
        )
        if config.verify:
            verify_schedule(schedule, check_mapping=require_mapping)
    return AttemptOutcome(attempt=attempt, schedule=schedule)


def schedule_loop(
    ddg: Ddg,
    machine: Machine,
    backend: str = "auto",
    objective: str = "feasibility",
    mapping: Optional[bool] = None,
    time_limit_per_t: Optional[float] = 30.0,
    max_extra: int = 10,
    verify: bool = True,
    repair_modulo: bool = False,
    presolve: bool = True,
) -> SchedulingResult:
    """Find a rate-optimal software-pipelined schedule for ``ddg``.

    Tries ``T = T_lb .. T_lb + max_extra``; periods violating the modulo
    scheduling constraint are recorded as skipped — unless
    ``repair_modulo`` is set, in which case delay insertion
    (:func:`repro.machine.delays.delayed_machine`) is attempted first:
    the period becomes admissible on a patched machine at the price of
    longer latencies (the paper's §3 out-of-scope case, experiment E16).
    Raises :class:`SchedulingError` only for structurally impossible
    inputs; a loop that simply exhausts its budget returns a result with
    ``schedule=None`` (the paper's "not scheduled within the time limit"
    bucket).
    """
    start_clock = time.monotonic()
    bounds = lower_bounds(ddg, machine)
    attempts: List[ScheduleAttempt] = []
    schedule: Optional[Schedule] = None
    config = AttemptConfig(
        backend=backend,
        objective=objective,
        mapping=mapping,
        time_limit=time_limit_per_t,
        verify=verify,
        repair_modulo=repair_modulo,
        presolve=presolve,
    )

    for t_period in range(bounds.t_lb, bounds.t_lb + max_extra + 1):
        outcome = attempt_period(ddg, machine, t_period, config)
        attempts.append(outcome.attempt)
        if outcome.schedule is not None:
            schedule = outcome.schedule
            break

    if schedule is None and not attempts:
        raise SchedulingError(
            f"no candidate periods for loop {ddg.name!r} "
            f"(T_lb={bounds.t_lb}, max_extra={max_extra})"
        )
    return SchedulingResult(
        loop_name=ddg.name,
        bounds=bounds,
        attempts=attempts,
        schedule=schedule,
        total_seconds=time.monotonic() - start_clock,
    )
