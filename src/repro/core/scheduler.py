"""The rate-optimal scheduling driver (paper §6 procedure).

Computes ``T_lb = max(T_dep, T_res)``, then tries successive periods
(skipping those ruled out by the modulo scheduling constraint), building
and solving the unified ILP at each ``T`` under a per-period time budget.
The first feasible period yields a rate-optimal schedule *for fixed FU
assignment* — every smaller admissible period was proven infeasible.

The per-attempt body lives in :func:`attempt_period`, a module-level
function whose arguments and result are picklable, so the same code
drives both this sequential sweep and the multiprocess period racer in
:mod:`repro.parallel.race`.

The per-attempt records feed the Table 4 / Table 5 experiment harness
(how many loops schedule at ``T_lb``, ``T_lb + 2``, ... and how much
solver time each took).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.bounds import LowerBounds, lower_bounds, modulo_feasible_t
from repro.core.errors import SchedulingError
from repro.core.formulation import Formulation, FormulationOptions
from repro.core.schedule import Schedule
from repro.core.verify import verify_schedule
from repro.core.warmstart import WarmStart, compute_warmstart, warmstart_assignment
from repro.ddg.graph import Ddg
from repro.ilp.solution import SolveStatus
from repro.machine import Machine
from repro.supervision import faults
from repro.supervision.records import DEGRADED, FailureRecord
from repro.supervision.signals import interrupted

#: Attempt status for a period satisfied by the heuristic schedule alone
#: (feasibility objective at the heuristic's II) — no ILP was built or
#: solved for it.
HEURISTIC = "heuristic"


@dataclass
class ScheduleAttempt:
    """One ILP solve at a candidate period."""

    t_period: int
    #: SolveStatus value, "modulo_infeasible", "heuristic", "cancelled",
    #: "degraded", or a supervision failure kind (crash/hang/oom/
    #: solver_error/interrupted) — in which case ``failure`` is set.
    status: str
    seconds: float = 0.0
    #: :class:`repro.ilp.model.ModelStats` as a plain dict (sizes,
    #: eliminated vars/rows/nnz, per-phase seconds) — kept a dict so the
    #: attempt pickles across worker processes and serializes to JSON.
    model_stats: Dict[str, float] = field(default_factory=dict)
    nodes: int = 0
    #: True when the period was admissible only after delay insertion.
    repaired: bool = False
    #: Best dual bound / relative gap the solver reported (populated on
    #: timed-out attempts so reports show how close they were).
    bound: Optional[float] = None
    gap: Optional[float] = None
    #: True when a heuristic-derived incumbent seeded this solve.
    warm_started: bool = False
    #: Terminal supervision failure (crash/hang/oom/solver_error/
    #: interrupted) that ended this attempt, after any retries.
    failure: Optional[FailureRecord] = None
    #: Which solver actually produced this attempt's verdict ("highs",
    #: "bnb", "sat"; "" for attempts that never reached a backend —
    #: modulo-infeasible, cut skips, heuristic settles, cancellations).
    #: Provenance only: never part of any cache or store fingerprint.
    backend: str = ""


@dataclass
class WarmStartStats:
    """What the heuristic pre-pass contributed to one loop's sweep."""

    enabled: bool
    heuristic_ii: Optional[int] = None
    heuristic_mii: Optional[int] = None
    heuristic_seconds: float = 0.0
    placements: int = 0
    #: ILP solves actually performed during the sweep (modulo-infeasible
    #: classifications and heuristic short-circuits don't count).
    ilp_solves: int = 0

    @property
    def skipped_all_ilp(self) -> bool:
        """The heuristic alone settled the loop — zero ILP solves."""
        return (self.enabled and self.heuristic_ii is not None
                and self.ilp_solves == 0)

    def to_json_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "heuristic_ii": self.heuristic_ii,
            "heuristic_mii": self.heuristic_mii,
            "heuristic_seconds": round(self.heuristic_seconds, 6),
            "placements": self.placements,
            "ilp_solves": self.ilp_solves,
            "skipped_all_ilp": self.skipped_all_ilp,
        }


@dataclass
class StoreStats:
    """What the persistent schedule store did for one loop's solve.

    Attached to :class:`SchedulingResult` whenever a store was consulted
    — both on hits (the sweep was skipped entirely) and on misses (the
    cold result was published back).  Lives here rather than in
    :mod:`repro.store` so the core result type has no store dependency.
    """

    enabled: bool
    #: Content address consulted (None when the store was disabled).
    key: Optional[str] = None
    hit: bool = False
    #: Which tier served the hit: ``"memory"`` or ``"disk"``.
    tier: Optional[str] = None
    #: The hit's schedule passed re-verification against the current
    #: machine (always True on a reported hit — failed verification
    #: demotes to a miss and sets ``evicted``).
    verified: bool = False
    #: A candidate entry was found but failed validation and was removed.
    evicted: bool = False
    #: This solve's result was written back to the store.
    published: bool = False
    #: Wall-clock spent on store lookup (canonicalization + read + verify).
    seconds: float = 0.0

    def to_json_dict(self) -> dict:
        return {
            "hit": self.hit,
            "tier": self.tier,
            "verified": self.verified,
            "evicted": self.evicted,
            "published": self.published,
            "seconds": round(self.seconds, 6),
        }


@dataclass
class SchedulingResult:
    """Outcome of :func:`schedule_loop`."""

    loop_name: str
    bounds: LowerBounds
    attempts: List[ScheduleAttempt]
    schedule: Optional[Schedule] = None
    total_seconds: float = 0.0
    #: Heuristic pre-pass record (None when the driver predates it).
    warmstart: Optional[WarmStartStats] = None
    #: True when the loop settled to its best-known incumbent because
    #: solves failed or the run was interrupted — the result is usable
    #: but weaker than a clean sweep (no optimality claims).
    degraded: bool = False
    #: Persistent-store interaction record (None when no store was used).
    store: Optional[StoreStats] = None
    #: Portfolio-race bookkeeping (None for single-backend runs): the
    #: backend roster, the winning backend, and loser kill/cancel
    #: counters (see :func:`repro.parallel.race_periods`).
    portfolio: Optional[Dict[str, object]] = None

    @property
    def achieved_t(self) -> Optional[int]:
        return self.schedule.t_period if self.schedule else None

    @property
    def is_rate_optimal_proven(self) -> bool:
        """Schedule found and every smaller admissible T proven infeasible.

        Judged per period, not per attempt: a period below the winner
        counts as settled when *any* attempt at it proved infeasibility
        (solver INFEASIBLE, a recycled cut, or the modulo-admissibility
        check).  Portfolio races legitimately leave extra attempts at a
        settled period — cancelled losers, timed-out stragglers — and
        those must not retract a proof a sibling backend already
        delivered.  Every period in ``[t_lb, T)`` must carry a proof;
        a gap (no attempt at all, or only non-proof attempts) means the
        claim would be unsupported.
        """
        if self.schedule is None:
            return False
        proof_statuses = (SolveStatus.INFEASIBLE.value, "modulo_infeasible")
        proven = {
            attempt.t_period
            for attempt in self.attempts
            if attempt.status in proof_statuses
        }
        return all(
            t in proven
            for t in range(self.bounds.t_lb, self.schedule.t_period)
        )

    @property
    def delta_from_lb(self) -> Optional[int]:
        """``T - T_lb`` — the quantity Table 4 buckets loops by."""
        if self.schedule is None:
            return None
        return self.schedule.t_period - self.bounds.t_lb

    def lost_cells(self) -> List[Dict[str, object]]:
        """Provenance of every period cell that died without a verdict.

        A degraded settle means some ``(T, backend)`` cells never
        produced feasible/infeasible: they crashed, hung, OOMed, raised,
        were interrupted, or were cancelled as portfolio losers.  Each
        such attempt yields ``{"t", "backend", "kind", "detail"}`` —
        ``kind`` is the supervision failure taxonomy kind, or
        ``"cancelled"`` for reaped losers (detail empty).  Order follows
        the attempt list, so reports stay deterministic.
        """
        lost: List[Dict[str, object]] = []
        for attempt in self.attempts:
            if attempt.failure is not None:
                lost.append({
                    "t": attempt.t_period,
                    "backend": attempt.backend,
                    "kind": attempt.failure.kind,
                    "detail": attempt.failure.detail,
                })
            elif attempt.status == "cancelled":
                lost.append({
                    "t": attempt.t_period,
                    "backend": attempt.backend,
                    "kind": "cancelled",
                    "detail": "",
                })
        return lost

    def summary(self) -> str:
        t_found = self.achieved_t if self.schedule else "none"
        return (
            f"{self.loop_name}: T_dep={self.bounds.t_dep} "
            f"T_res={self.bounds.t_res} T_lb={self.bounds.t_lb} "
            f"-> T={t_found} ({self.total_seconds:.2f}s, "
            f"{len(self.attempts)} attempt(s))"
        )


@dataclass(frozen=True)
class AttemptConfig:
    """Per-attempt knobs shared by the sequential and parallel drivers.

    Frozen and free of live objects so it pickles cleanly into worker
    processes.
    """

    backend: str = "auto"
    objective: str = "feasibility"
    mapping: Optional[bool] = None
    time_limit: Optional[float] = 30.0
    verify: bool = True
    repair_modulo: bool = False
    presolve: bool = True
    #: Run the iterative-modulo heuristic first and use its schedule to
    #: bracket the sweep / seed the solver (see repro.core.warmstart).
    warmstart: bool = True
    #: Carry a :class:`repro.core.incremental.SweepContext` across the
    #: T-sweep: T-independent analysis products feed each formulation
    #: build, and infeasibility certificates from earlier periods skip
    #: attempts they already prove.  Reuse is outcome-identical — the
    #: fed build produces a byte-identical model, and cuts fire only
    #: where the cold path deterministically returns INFEASIBLE — so
    #: toggling this never changes schedules, bounds, or proof flags.
    #: Only takes effect alongside ``presolve`` (the cut validity
    #: arguments lean on presolve's checks).
    incremental: bool = True


@dataclass
class AttemptOutcome:
    """What one call to :func:`attempt_period` produced."""

    attempt: ScheduleAttempt
    schedule: Optional[Schedule] = None


def attempt_period(
    ddg: Ddg,
    machine: Machine,
    t_period: int,
    config: Optional[AttemptConfig] = None,
    formulation_builder: Optional[
        Callable[[Ddg, Machine, int, FormulationOptions], Formulation]
    ] = None,
    incumbent: Optional[Schedule] = None,
    context=None,
) -> AttemptOutcome:
    """Run the §6 procedure's body for one candidate period.

    Checks the modulo scheduling constraint (optionally repairing via
    delay insertion), builds and solves the unified ILP, and extracts +
    verifies a schedule when the solve is feasible.  Both
    :func:`schedule_loop` and :func:`repro.parallel.race.race_periods`
    funnel through here, which is what keeps their results identical.

    ``formulation_builder`` lets callers inject a memoized constructor
    (see :mod:`repro.parallel.cache`); it is an in-process hook only and
    never crosses a pickle boundary.

    ``incumbent`` is an already-verified schedule at this exact period
    (normally the heuristic's); it is converted into a full variable
    assignment and handed to the solver as its starting incumbent.  A
    schedule that cannot be converted — wrong period, machine repaired
    by delay insertion, or any row of the built model unsatisfied — is
    silently dropped and the solve runs cold.

    ``context`` is the loop's :class:`~repro.core.incremental.SweepContext`
    (the sequential sweep fetches one and passes it down); when omitted
    under an incremental config the per-process registry self-serves it,
    which is how each race / supervised worker process gets its own
    without anything crossing a pickle boundary.  Before building, the
    context's cut pool is consulted: a certificate covering this attempt
    returns INFEASIBLE immediately, with ``model_stats["cut_skip"]``
    naming the cut kind.  After an infeasible attempt, the verdict is
    harvested back into the pool.
    """
    config = config or AttemptConfig()
    faults.fire("attempt", loop=ddg.name, t=t_period,
                backend=config.backend)
    attempt_machine = machine
    repaired = False
    if not modulo_feasible_t(ddg, machine, t_period):
        patched = None
        if config.repair_modulo:
            from repro.machine.delays import delayed_machine

            patched = delayed_machine(machine, t_period)
        if patched is None:
            return AttemptOutcome(
                ScheduleAttempt(t_period=t_period, status="modulo_infeasible")
            )
        attempt_machine = patched
        repaired = True
    if not (config.incremental and config.presolve):
        context = None
    elif context is None:
        from repro.core.incremental import context_for

        context = context_for(ddg, machine)
    machine_key: Optional[str] = None
    if context is not None:
        if repaired:
            from repro.core.incremental import machine_key as key_of

            machine_key = key_of(attempt_machine)
        else:
            machine_key = context.base_machine_key
        kind = context.cuts.consult(
            machine_key, t_period, config.objective, None, config.mapping
        )
        if kind is not None:
            return AttemptOutcome(
                ScheduleAttempt(
                    t_period=t_period,
                    status=SolveStatus.INFEASIBLE.value,
                    repaired=repaired,
                    model_stats={"cut_skip": kind},
                )
            )
    options = FormulationOptions(
        mapping=config.mapping, objective=config.objective,
        presolve=config.presolve,
    )
    if formulation_builder is not None and not repaired:
        formulation = formulation_builder(
            ddg, attempt_machine, t_period, options
        )
    else:
        formulation = Formulation(
            ddg, attempt_machine, t_period, options, context=context
        )
    formulation.build()
    mip_start = None
    if (incumbent is not None and not repaired
            and incumbent.t_period == t_period):
        mip_start = warmstart_assignment(formulation, incumbent)
    solution = formulation.solve(
        backend=config.backend, time_limit=config.time_limit,
        mip_start=mip_start,
    )
    schedule: Optional[Schedule] = None
    verify_seconds = 0.0
    if solution.status.has_solution:
        require_mapping = config.mapping is not False
        schedule = formulation.extract(
            solution, require_mapping=require_mapping
        )
        if config.verify:
            verify_start = time.monotonic()
            verify_schedule(schedule, check_mapping=require_mapping)
            verify_seconds = time.monotonic() - verify_start
    if context is not None and machine_key is not None:
        _harvest_cuts(
            context, machine_key, formulation, solution, t_period, config
        )
    stats = formulation.model_stats.to_dict()
    stats["lower_seconds"] = solution.lower_seconds
    stats["solve_seconds"] = solution.solve_seconds
    stats["verify_seconds"] = verify_seconds
    stats["total_seconds"] = (
        stats["presolve_seconds"] + stats["build_seconds"]
        + solution.solve_seconds + verify_seconds
    )
    # Backend-specific phase counters (the SAT backend's encode/search/
    # decode split, learned-clause counts, ...) ride along so `repro
    # profile` can break attempts down per backend.
    stats.update(solution.stats)
    if solution.time_limit_clamped:
        stats["effective_time_limit"] = solution.effective_time_limit
        stats["time_limit_clamped"] = 1.0
    attempt = ScheduleAttempt(
        t_period=t_period,
        status=solution.status.value,
        seconds=solution.solve_seconds,
        model_stats=stats,
        nodes=solution.nodes,
        repaired=repaired,
        bound=solution.bound,
        gap=solution.gap,
        warm_started=mip_start is not None,
        backend=solution.backend,
    )
    return AttemptOutcome(attempt=attempt, schedule=schedule)


def _harvest_cuts(
    context,
    machine_key: str,
    formulation: Formulation,
    solution,
    t_period: int,
    config: AttemptConfig,
) -> None:
    """Bank this attempt's infeasibility evidence into the cut pool.

    A presolve-proven verdict also certifies the machine's dependence
    and capacity floors (both properties of the (ddg, machine) pair, not
    of the period that exposed them); a solver-completed INFEASIBLE is
    memoized for exact-tuple replay only.
    """
    from repro.core.incremental import CAPACITY_FLOOR, CYCLE_FLOOR

    info = formulation.presolve_info
    if info is not None and info.infeasible:
        context.cuts.memoize_infeasible(
            machine_key, t_period, config.objective, None, config.mapping,
            source="presolve",
        )
        analysis = formulation.analysis
        if analysis is not None:
            context.cuts.assert_floor(
                CYCLE_FLOOR, machine_key, analysis.t_dep()
            )
            context.cuts.assert_floor(
                CAPACITY_FLOOR, machine_key, analysis.t_res_floor
            )
    elif solution.status is SolveStatus.INFEASIBLE:
        context.cuts.memoize_infeasible(
            machine_key, t_period, config.objective, None, config.mapping,
            source="solver",
        )


def heuristic_pass(
    ddg: Ddg,
    machine: Machine,
    config: AttemptConfig,
    max_extra: int,
    warmstart_provider: Optional[
        Callable[[Ddg, Machine, int], WarmStart]
    ] = None,
) -> tuple:
    """Run the warm-start pre-pass when the config calls for one.

    Returns ``(WarmStart | None, WarmStartStats)``.  Disabled outright
    under the counting-only relaxation (``mapping=False``): the heuristic
    solves the *mapped* problem, whose answers must not leak into an
    experiment about the unmapped one.
    """
    if not config.warmstart or config.mapping is False:
        return None, WarmStartStats(enabled=False)
    provider = warmstart_provider or compute_warmstart
    ws = provider(ddg, machine, max_extra)
    return ws, WarmStartStats(
        enabled=True,
        heuristic_ii=ws.ii,
        heuristic_mii=ws.mii,
        heuristic_seconds=ws.seconds,
        placements=ws.placements,
    )


def heuristic_attempt(ws: WarmStart) -> ScheduleAttempt:
    """Attempt record for a period settled without any ILP."""
    return ScheduleAttempt(
        t_period=ws.ii,
        status=HEURISTIC,
        seconds=0.0,
        warm_started=True,
    )


def run_sweep(
    ddg: Ddg,
    machine: Machine,
    config: AttemptConfig,
    max_extra: int,
    bounds: Optional[LowerBounds] = None,
    formulation_builder: Optional[
        Callable[[Ddg, Machine, int, FormulationOptions], Formulation]
    ] = None,
    warmstart_provider: Optional[
        Callable[[Ddg, Machine, int], WarmStart]
    ] = None,
    attempt_runner: Optional[Callable[..., AttemptOutcome]] = None,
    store=None,
) -> SchedulingResult:
    """The §6 increasing-T sweep, warm-start and failure aware.

    Shared by :func:`schedule_loop` and the batch worker (which injects
    memoized bound/formulation/warm-start providers).  With warm starts
    enabled the heuristic runs first; its achieved II caps the candidate
    range from above, settles its own period outright under the
    feasibility objective (status ``"heuristic"``, no ILP), and seeds
    the solver's incumbent otherwise.

    ``attempt_runner`` replaces the direct :func:`attempt_period` call —
    e.g. :class:`repro.supervision.SupervisedAttemptRunner` ships each
    attempt to a deadline-guarded worker process.  An attempt that comes
    back with a :class:`~repro.supervision.records.FailureRecord` is
    recorded and the sweep *continues to the next period* (degradation:
    accept a larger T rather than abort); a graceful interrupt stops the
    sweep and settles to the heuristic incumbent when one exists, marked
    with a ``"degraded"`` attempt instead of raising.

    ``store`` (a :class:`repro.store.ScheduleStore`) short-circuits the
    entire sweep — heuristic pre-pass included — when a verified entry
    for this (loop, machine, semantics) content address exists, and
    publishes the result back on a clean cold solve.  Store misses cost
    one canonicalization + file probe; hits are re-verified against the
    current machine before being trusted (see ``docs/performance.md``).
    """
    start_clock = time.monotonic()
    store_stats: Optional[StoreStats] = None
    if store is not None:
        from repro.store.tiering import lookup as store_lookup

        stored, store_stats = store_lookup(
            store, ddg, machine, config, max_extra
        )
        if stored is not None:
            stored.store = store_stats
            stored.total_seconds = time.monotonic() - start_clock
            return stored
    if bounds is None:
        bounds = lower_bounds(ddg, machine)
    context = None
    if config.incremental and config.presolve and attempt_runner is None:
        # One context serves the whole sweep; supervised runners can't
        # take it across the pickle boundary — their worker processes
        # self-serve from the per-process registry inside attempt_period.
        from repro.core.incremental import context_for

        context = context_for(ddg, machine)
    ws, ws_stats = heuristic_pass(
        ddg, machine, config, max_extra, warmstart_provider
    )
    attempts: List[ScheduleAttempt] = []
    schedule: Optional[Schedule] = None
    saw_failure = False
    was_interrupted = False

    upper = bounds.t_lb + max_extra
    if ws is not None and ws.ii is not None:
        upper = min(upper, ws.ii)
    for t_period in range(bounds.t_lb, upper + 1):
        if interrupted():
            was_interrupted = True
            break
        at_heuristic_ii = ws is not None and ws.ii == t_period
        if at_heuristic_ii and config.objective == "feasibility":
            # Any feasible point is optimal for pure feasibility, and
            # the heuristic already delivered a verified one here.
            attempts.append(heuristic_attempt(ws))
            schedule = ws.schedule
            break
        incumbent = ws.schedule if at_heuristic_ii else None
        if attempt_runner is not None:
            outcome = attempt_runner(
                ddg, machine, t_period, config, incumbent=incumbent
            )
        else:
            outcome = attempt_period(
                ddg, machine, t_period, config,
                formulation_builder=formulation_builder,
                incumbent=incumbent,
                context=context,
            )
        attempts.append(outcome.attempt)
        if outcome.attempt.failure is not None:
            saw_failure = True
            if outcome.attempt.failure.kind == "interrupted":
                was_interrupted = True
                break
            continue
        if outcome.attempt.status != "modulo_infeasible":
            ws_stats.ilp_solves += 1
        if outcome.schedule is not None:
            schedule = outcome.schedule
            break

    degraded = False
    if (schedule is None and ws is not None and ws.schedule is not None
            and (saw_failure or was_interrupted)):
        # Exhausted retries or an interrupt left no clean win, but the
        # heuristic pre-pass holds a verified schedule: settle to it.
        attempts.append(
            ScheduleAttempt(
                t_period=ws.ii, status=DEGRADED, warm_started=True,
            )
        )
        schedule = ws.schedule
        degraded = True

    if schedule is None and not attempts and not was_interrupted:
        raise SchedulingError(
            f"no candidate periods for loop {ddg.name!r} "
            f"(T_lb={bounds.t_lb}, max_extra={max_extra})"
        )
    result = SchedulingResult(
        loop_name=ddg.name,
        bounds=bounds,
        attempts=attempts,
        schedule=schedule,
        total_seconds=time.monotonic() - start_clock,
        warmstart=ws_stats,
        degraded=degraded,
        store=store_stats,
    )
    if store is not None:
        from repro.store.tiering import publish as store_publish

        store_publish(
            store, ddg, machine, config, max_extra, result,
            stats=store_stats,
        )
    return result


def schedule_loop(
    ddg: Ddg,
    machine: Machine,
    backend: str = "auto",
    objective: str = "feasibility",
    mapping: Optional[bool] = None,
    time_limit_per_t: Optional[float] = 30.0,
    max_extra: int = 10,
    verify: bool = True,
    repair_modulo: bool = False,
    presolve: bool = True,
    warmstart: bool = True,
    incremental: bool = True,
    supervision=None,
    store=None,
) -> SchedulingResult:
    """Find a rate-optimal software-pipelined schedule for ``ddg``.

    Tries ``T = T_lb .. T_lb + max_extra``; periods violating the modulo
    scheduling constraint are recorded as skipped — unless
    ``repair_modulo`` is set, in which case delay insertion
    (:func:`repro.machine.delays.delayed_machine`) is attempted first:
    the period becomes admissible on a patched machine at the price of
    longer latencies (the paper's §3 out-of-scope case, experiment E16).
    Raises :class:`SchedulingError` only for structurally impossible
    inputs; a loop that simply exhausts its budget returns a result with
    ``schedule=None`` (the paper's "not scheduled within the time limit"
    bucket).

    With ``warmstart`` (the default) the iterative modulo scheduler runs
    first; when it achieves ``II == T_lb`` the loop is settled with zero
    ILP solves, and otherwise its schedule brackets and seeds the sweep.

    ``supervision`` (a :class:`repro.supervision.SupervisionPolicy`)
    ships each per-period solve to a deadline/memory-guarded worker
    process; crashes, hangs and OOMs then surface as per-attempt
    :class:`~repro.supervision.records.FailureRecord` data and the sweep
    degrades gracefully instead of dying (see ``docs/robustness.md``).

    ``store`` (a :class:`repro.store.ScheduleStore` or a path accepted
    by :func:`repro.store.open_store`) consults the persistent schedule
    store before doing any work and publishes clean results back.

    ``incremental`` (the default) carries a
    :class:`~repro.core.incremental.SweepContext` across the sweep —
    shared T-independent analysis plus recycled infeasibility cuts; see
    ``docs/performance.md``.  Disabling it reproduces the fully cold
    per-attempt behavior bit-for-bit (same schedules, bounds and proof
    flags — only timings and reuse counters change).
    """
    if backend == "portfolio":
        raise SchedulingError(
            "backend='portfolio' races several backends per period and "
            "needs a racing driver: use repro.parallel.race_periods(..., "
            "backend='portfolio') or repro.parallel.run_batch(..., "
            "backend='portfolio') instead of schedule_loop"
        )
    config = AttemptConfig(
        backend=backend,
        objective=objective,
        mapping=mapping,
        time_limit=time_limit_per_t,
        verify=verify,
        repair_modulo=repair_modulo,
        presolve=presolve,
        warmstart=warmstart,
        incremental=incremental,
    )
    if store is not None:
        from repro.store import open_store

        store = open_store(store)
    if supervision is None:
        return run_sweep(ddg, machine, config, max_extra, store=store)
    from repro.supervision.runner import SupervisedAttemptRunner

    with SupervisedAttemptRunner(
        supervision, time_budget=time_limit_per_t
    ) as runner:
        return run_sweep(
            ddg, machine, config, max_extra, attempt_runner=runner,
            store=store,
        )
