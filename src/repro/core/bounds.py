"""Lower bounds on the initiation interval and admissible periods.

``T_dep`` (recurrences) comes from :mod:`repro.ddg.analysis`; ``T_res``
is the resource bound: for each FU type the busiest pipeline *stage* must
fit all its uses into ``R_r * T`` slot-copies, giving

    T_res(r) = ceil( max_stage( total uses of stage by all ops on r ) / R_r )

(for clean pipelines this reduces to the familiar ``ceil(N_r / R_r)``;
for a non-pipelined unit of busy time ``d`` it is ``ceil(N_r * d / R_r)``).

A candidate period must additionally satisfy the **modulo scheduling
constraint** (§3): every reservation table in use must be conflict-free
mod ``T``.  Periods violating it admit *no* fixed-FU schedule and are
skipped by the driver (the paper assumes them away; we detect them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.ddg.analysis import t_dep
from repro.ddg.graph import Ddg
from repro.machine import Machine


def t_res(ddg: Ddg, machine: Machine) -> int:
    """The resource-constrained lower bound on T."""
    per_type = per_type_t_res(ddg, machine)
    return max(per_type.values(), default=1)


def per_type_t_res(ddg: Ddg, machine: Machine) -> Dict[str, int]:
    """Resource bound contributed by each FU type (only types in use)."""
    stage_usage: Dict[str, Dict[int, int]] = {}
    for op in ddg.ops:
        cls = machine.op_class(op.op_class)
        table = machine.reservation_for(op.op_class)
        usage = stage_usage.setdefault(cls.fu_type, {})
        for stage, count in enumerate(table.stage_usage_counts()):
            if count:
                usage[stage] = usage.get(stage, 0) + count
    bounds: Dict[str, int] = {}
    for fu_name, usage in stage_usage.items():
        count = machine.fu_type(fu_name).count
        busiest = max(usage.values())
        bounds[fu_name] = max(1, math.ceil(busiest / count))
    return bounds


@dataclass(frozen=True)
class LowerBounds:
    """The three bounds the paper reports per loop."""

    t_dep: int
    t_res: int

    @property
    def t_lb(self) -> int:
        return max(self.t_dep, self.t_res)


def lower_bounds(ddg: Ddg, machine: Machine) -> LowerBounds:
    """Compute ``T_dep``, ``T_res`` and hence ``T_lb`` for a loop."""
    return LowerBounds(t_dep=t_dep(ddg, machine), t_res=t_res(ddg, machine))


def modulo_feasible_t(ddg: Ddg, machine: Machine, t_period: int) -> bool:
    """Whether every reservation table used by the loop is hazard-free
    mod ``t_period`` (the §3 modulo scheduling constraint)."""
    return all(
        machine.reservation_for(cls).modulo_feasible(t_period)
        for cls in ddg.classes_used()
    )


def candidate_periods(
    ddg: Ddg,
    machine: Machine,
    max_extra: int = 10,
    include_infeasible: bool = False,
) -> Iterator[int]:
    """Periods to try, in increasing order, starting at ``T_lb``.

    Yields up to ``max_extra + 1`` values; periods failing the modulo
    scheduling constraint are skipped unless ``include_infeasible``.
    """
    t_lb = lower_bounds(ddg, machine).t_lb
    for t_period in range(t_lb, t_lb + max_extra + 1):
        if include_infeasible or modulo_feasible_t(ddg, machine, t_period):
            yield t_period


def infeasible_periods(
    ddg: Ddg, machine: Machine, up_to: int
) -> List[int]:
    """Periods in ``[1, up_to]`` ruled out by the modulo constraint."""
    return [
        t for t in range(1, up_to + 1)
        if not modulo_feasible_t(ddg, machine, t)
    ]
