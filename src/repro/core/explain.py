"""Infeasibility diagnosis: *why* is a period impossible?

Given a (loop, machine, T) that the unified ILP rejects, walks the
relaxation chain the paper's sections correspond to and reports the
first level that already fails:

1. ``MODULO``     — T violates the modulo scheduling constraint (§3);
2. ``DEPENDENCE`` — the recurrences alone forbid T (with a critical
   cycle as witness);
3. ``CAPACITY``   — aggregate stage counts cannot fit (§4.1 relaxation
   infeasible; the busiest stage is named);
4. ``MAPPING``    — counts fit but no fixed FU assignment exists (§4.2:
   the full ILP is infeasible while the counting relaxation is not; a
   counting schedule whose greedy mapping fails is attached as witness);
5. ``FEASIBLE``   — nothing fails: the period is achievable.

This is the analysis a compiler engineer wants when the scheduler bumps
T: on the motivating example at T=3 it answers ``MAPPING``, which is the
paper's §2 story in one word.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.bounds import modulo_feasible_t, per_type_t_res
from repro.core.errors import MappingError
from repro.core.formulation import Formulation, FormulationOptions
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg.analysis import critical_cycle, dependence_feasible
from repro.ddg.graph import Ddg
from repro.machine import Machine


class Reason(enum.Enum):
    FEASIBLE = "feasible"
    MODULO = "modulo scheduling constraint"
    DEPENDENCE = "dependence recurrences"
    CAPACITY = "aggregate stage capacity"
    MAPPING = "fixed FU assignment (coloring)"
    UNKNOWN = "solver budget exhausted"


@dataclass
class Diagnosis:
    """Result of :func:`explain_infeasibility`."""

    t_period: int
    reason: Reason
    detail: str
    critical_ops: List[int]
    counting_schedule: Optional[Schedule] = None

    def render(self, ddg: Ddg) -> str:
        lines = [f"T = {self.t_period}: {self.reason.value}"]
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.critical_ops:
            names = ", ".join(
                ddg.ops[i].name for i in self.critical_ops
            )
            lines.append(f"  involved ops: {names}")
        return "\n".join(lines)


def explain_infeasibility(
    ddg: Ddg,
    machine: Machine,
    t_period: int,
    backend: str = "auto",
    time_limit: Optional[float] = 10.0,
) -> Diagnosis:
    """Diagnose why ``t_period`` fails (or confirm it is feasible)."""
    ddg.validate_against(machine)
    if not modulo_feasible_t(ddg, machine, t_period):
        offenders = sorted({
            op.op_class for op in ddg.ops
            if not machine.reservation_for(op.op_class).modulo_feasible(
                t_period
            )
        })
        return Diagnosis(
            t_period=t_period,
            reason=Reason.MODULO,
            detail=(
                "reservation table(s) self-collide mod T for class(es): "
                + ", ".join(offenders)
            ),
            critical_ops=[
                op.index for op in ddg.ops if op.op_class in offenders
            ],
        )

    if not dependence_feasible(ddg, machine, t_period):
        cycle = critical_cycle(ddg, machine) or []
        return Diagnosis(
            t_period=t_period,
            reason=Reason.DEPENDENCE,
            detail="a recurrence cycle needs more than T cycles per "
                   "iteration",
            critical_ops=list(cycle),
        )

    per_type = per_type_t_res(ddg, machine)
    over = [name for name, bound in per_type.items() if bound > t_period]
    if over:
        worst = max(over, key=lambda name: per_type[name])
        return Diagnosis(
            t_period=t_period,
            reason=Reason.CAPACITY,
            detail=(
                f"FU type {worst!r} needs T >= {per_type[worst]} "
                "(busiest-stage bound)"
            ),
            critical_ops=[
                op.index for op in ddg.ops
                if machine.op_class(op.op_class).fu_type == worst
            ],
        )

    counting = Formulation(
        ddg, machine, t_period,
        FormulationOptions(mapping=False),
    )
    counting_solution = counting.solve(backend=backend,
                                       time_limit=time_limit)
    if not counting_solution.status.has_solution:
        if counting_solution.status.value == "infeasible":
            return Diagnosis(
                t_period=t_period,
                reason=Reason.CAPACITY,
                detail="the counting relaxation (aggregate usage + "
                       "dependences combined) is infeasible",
                critical_ops=[],
            )
        return Diagnosis(
            t_period=t_period, reason=Reason.UNKNOWN,
            detail="counting relaxation hit the budget", critical_ops=[],
        )

    full = Formulation(ddg, machine, t_period)
    full_solution = full.solve(backend=backend, time_limit=time_limit)
    if full_solution.status.has_solution:
        return Diagnosis(
            t_period=t_period, reason=Reason.FEASIBLE, detail="",
            critical_ops=[],
        )
    if full_solution.status.value != "infeasible":
        return Diagnosis(
            t_period=t_period, reason=Reason.UNKNOWN,
            detail="full formulation hit the budget", critical_ops=[],
        )

    witness = counting.extract(counting_solution, require_mapping=False)
    involved: List[int] = []
    try:
        greedy_mapping(ddg, machine, witness.starts, t_period)
        detail = ("coloring infeasible although one counting schedule "
                  "happens to map greedily — the dependence/mapping "
                  "interaction rules out every mappable offset choice")
    except MappingError as exc:
        detail = str(exc)
        involved = [
            op.index for op in ddg.ops
            if not machine.reservation_for(op.op_class).is_clean
        ]
    return Diagnosis(
        t_period=t_period,
        reason=Reason.MAPPING,
        detail=detail,
        critical_ops=involved,
        counting_schedule=witness,
    )
