"""Heuristic-primal warm starts for the unified ILP (§6 + Rau [22]).

Rau's iterative modulo scheduler (:mod:`repro.baselines.modulo`) solves
the *same* schedule-and-map problem as the exact formulation, just
approximately: it returns a verified :class:`~repro.core.schedule.
Schedule` at some initiation interval ``II >= T_lb``.  That schedule is
worth a lot to the exact sweep:

* when ``II == T_lb`` the heuristic *is* rate-optimal (the lower bound
  proves it) and no ILP needs to be solved at all;
* otherwise ``II`` is an upper bound that brackets the §6 sweep —
  periods above ``II`` never need to be tried — and the schedule itself
  converts into a complete ILP variable assignment that seeds the
  solver's incumbent at ``T = II`` (pruning branch-and-bound from the
  root, exactly the heuristic/exact interplay of SAT-MapIt and Roorda's
  bounded SMT runs).

The conversion is the delicate part.  The presolved model
(:mod:`repro.core.presolve`) anchors one op to pattern slot 0 and
narrows slot windows / ``k`` ranges, so a raw heuristic schedule is not
necessarily a point of the *presolved* polytope even though it is a
valid schedule.  :func:`warmstart_assignment` therefore normalizes
first — shift the whole schedule so the anchor lands on slot 0, then
re-minimize the stage indices by a Bellman pass over the dependence
difference constraints with the slot residues held fixed (the same
shift-then-re-minimize argument presolve uses to preserve feasibility)
— and then *validates the assignment row by row* against the built
model.  Anything that does not check out returns ``None`` and the
solver simply runs cold: warm starts are an optimization, never a
semantic input.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.modulo import iterative_modulo_schedule
from repro.core.errors import VerificationError
from repro.core.formulation import Formulation
from repro.core.schedule import Schedule
from repro.core.verify import verify_schedule
from repro.ddg.graph import Ddg
from repro.ilp.model import Variable
from repro.machine import Machine

#: Tolerance when checking an assignment against the model's rows.
ROW_TOL = 1e-6


@dataclass
class WarmStart:
    """Outcome of one heuristic pre-pass over a loop.

    ``schedule`` is ``None`` when the heuristic exhausted its II budget
    (or produced something that failed independent verification, which
    is treated identically — a broken heuristic must never poison the
    exact path).  Picklable, so it can cross worker-process boundaries.
    """

    loop_name: str
    mii: int
    ii: Optional[int]
    schedule: Optional[Schedule]
    seconds: float
    placements: int

    @property
    def hit_lower_bound(self) -> bool:
        """The heuristic alone proved rate-optimality (``II == T_lb``)."""
        return self.ii is not None and self.ii == self.mii

    def to_stats_dict(self) -> dict:
        return {
            "heuristic_ii": self.ii,
            "heuristic_mii": self.mii,
            "heuristic_seconds": round(self.seconds, 6),
            "placements": self.placements,
        }


def compute_warmstart(
    ddg: Ddg, machine: Machine, max_extra: int = 10
) -> WarmStart:
    """Run the iterative modulo scheduler as a primal pre-pass.

    The heuristic gets the same ``max_extra`` period budget as the exact
    sweep so the two search the same II range.  The returned schedule
    (if any) has passed :func:`repro.core.verify.verify_schedule` with
    mapping checks on.
    """
    start_clock = time.monotonic()
    result = iterative_modulo_schedule(ddg, machine, max_extra=max_extra)
    schedule = result.schedule
    ii = result.achieved_ii
    if schedule is not None:
        try:
            verify_schedule(schedule, check_mapping=True)
        except VerificationError:
            schedule = None
            ii = None
    return WarmStart(
        loop_name=ddg.name,
        mii=result.mii,
        ii=ii,
        schedule=schedule,
        seconds=time.monotonic() - start_clock,
        placements=result.placements,
    )


# -- schedule -> ILP point ---------------------------------------------------------


def _normalized_point(
    formulation: Formulation, schedule: Schedule
) -> Optional[Tuple[List[int], List[int]]]:
    """Slot residues and stage indices compatible with the built model.

    Without presolve the heuristic start times are used as-is.  With
    presolve, the schedule is shifted so the anchor op sits on pattern
    slot 0, checked against every op's slot window, and the stage
    indices are re-minimized by Bellman relaxation of the dependence
    difference constraints with residues fixed (initialised at the
    presolve ``k`` lower bounds).  Returns ``None`` when the schedule
    cannot be normalized into the model's variable ranges.
    """
    ddg = formulation.ddg
    t_period = formulation.t_period
    n = ddg.num_ops
    starts = schedule.starts
    info = formulation.presolve_info
    active = info is not None and not info.infeasible

    if not active:
        slots = [s % t_period for s in starts]
        stages = [s // t_period for s in starts]
        for i, var in enumerate(formulation.k):
            if not var.lb <= stages[i] <= var.ub:
                return None
        return slots, stages

    delta = 0
    if info.anchor is not None:
        delta = (-starts[info.anchor]) % t_period
    slots = [(s + delta) % t_period for s in starts]
    for i in range(n):
        if not info.slot_allowed(i, slots[i]):
            return None

    # Componentwise-minimal stage indices with the residues held fixed:
    # k_j - k_i >= ceil((sep_e - T*m_e - s_j + s_i) / T) for every edge.
    separations = ddg.dep_latencies(formulation.machine)
    stages = [info.k_bounds[i][0] for i in range(n)]
    for _ in range(n + 1):
        changed = False
        for dep, sep in zip(ddg.deps, separations):
            lift = math.ceil(
                (sep - t_period * dep.distance
                 - slots[dep.dst] + slots[dep.src]) / t_period
            )
            need = stages[dep.src] + lift
            if need > stages[dep.dst]:
                stages[dep.dst] = need
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - no positive cycle at a feasible period
        return None
    for i in range(n):
        if stages[i] > info.k_bounds[i][1]:
            return None
    return slots, stages


def _relabeled_colors(
    formulation: Formulation, schedule: Schedule
) -> Dict[int, int]:
    """Heuristic colors relabeled to satisfy the symmetry-breaking rows.

    Physical copies of an FU type are interchangeable, so any coloring
    can be renamed by first appearance along the exact order the
    formulation used for its ``sym`` caps (``color[order[r]] <= r + 1``).
    Returns 1-based colors for exactly the ops that own color variables.
    """
    colors: Dict[int, int] = {}
    for fu_name, ordered in formulation.color_order.items():
        remap: Dict[int, int] = {}
        for i in ordered:
            original = schedule.colors[i]
            if original not in remap:
                remap[original] = len(remap) + 1
            colors[i] = remap[original]
    return colors


def _footprint(
    formulation: Formulation, op_index: int, slot: int
) -> frozenset:
    """(stage, pattern-slot) cells op ``op_index`` occupies from ``slot``."""
    table = formulation.machine.reservation_for(
        formulation.ddg.ops[op_index].op_class
    )
    t_period = formulation.t_period
    return frozenset(
        (stage, (slot + cycle) % t_period)
        for stage, cycle in table.usage_offsets()
    )


def warmstart_assignment(
    formulation: Formulation,
    schedule: Schedule,
    validate: bool = True,
) -> Optional[Dict[Variable, float]]:
    """Convert a verified schedule into a full ILP variable assignment.

    Covers every variable the formulation may have created: the ``a``
    matrix and ``k`` vector, coloring variables ``c``/``w``/``o``,
    ``min_fu`` count variables and ``min_buffers`` buffer variables.
    The point is checked row-by-row against the built model (unless
    ``validate=False``); any mismatch returns ``None`` so callers fall
    back to a cold solve.
    """
    if schedule.t_period != formulation.t_period:
        return None
    if not schedule.has_complete_mapping:
        return None
    formulation.build()
    point = _normalized_point(formulation, schedule)
    if point is None:
        return None
    slots, stages = point
    ddg = formulation.ddg
    machine = formulation.machine
    t_period = formulation.t_period
    values: Dict[Variable, float] = {}

    for t in range(t_period):
        for i in range(ddg.num_ops):
            var = formulation.a[t][i]
            if var is not None:
                values[var] = 1.0 if slots[i] == t else 0.0
    for i, var in enumerate(formulation.k):
        values[var] = float(stages[i])

    colors = _relabeled_colors(formulation, schedule)
    for i, var in formulation.color.items():
        values[var] = float(colors[i])

    footprints = {
        i: _footprint(formulation, i, slots[i])
        for i in set(formulation.color)
        | {i for pair in formulation.sign_var for i in pair}
    }
    for (i, j), var in formulation.overlap_var.items():
        overlaps = bool(footprints[i] & footprints[j])
        values[var] = 1.0 if overlaps else 0.0
    for (i, j), var in formulation.sign_var.items():
        overlap_var = formulation.overlap_var.get((i, j))
        folded_always = overlap_var is None  # ALWAYS pair: o == 1 folded in
        overlapping = folded_always or values[overlap_var] == 1.0
        if overlapping:
            values[var] = 1.0 if colors[i] > colors[j] else 0.0
        else:
            values[var] = 0.0

    if formulation.fu_count_var:
        for fu_name, var in formulation.fu_count_var.items():
            colored = [
                colors[i] for i in formulation.color
                if machine.op_class(ddg.ops[i].op_class).fu_type == fu_name
            ]
            if colored:
                used = max(colored)
            else:
                shifted = Schedule(
                    ddg=ddg, machine=machine, t_period=t_period,
                    starts=[slots[i] + t_period * stages[i]
                            for i in range(ddg.num_ops)],
                    colors=dict(schedule.colors),
                )
                used = int(shifted.stage_usage_table(fu_name).max())
            values[var] = float(min(max(1, used), int(var.ub)))

    for e, var in formulation.buffer_var.items():
        dep = ddg.deps[e]
        lifetime = (
            slots[dep.dst] + t_period * stages[dep.dst]
            - slots[dep.src] - t_period * stages[dep.src]
            + t_period * dep.distance
        )
        values[var] = float(max(0, math.ceil(lifetime / t_period)))

    if validate and violated_rows(formulation, values):
        return None
    return values


def violated_rows(
    formulation: Formulation,
    values: Dict[Variable, float],
    tol: float = ROW_TOL,
) -> List[str]:
    """Names of model rows / variable boxes the assignment violates.

    An empty list means ``values`` is a feasible integer point of the
    built model — the property the differential test suite asserts for
    every heuristic-derived warm start.  Missing variables are reported
    as ``missing[<name>]`` entries.
    """
    formulation.build()
    bad: List[str] = []
    for var in formulation.model.variables:
        if var not in values:
            bad.append(f"missing[{var.name}]")
            continue
        value = values[var]
        if value < var.lb - tol or value > var.ub + tol:
            bad.append(f"bounds[{var.name}]")
        elif var.integer and abs(value - round(value)) > tol:
            bad.append(f"integrality[{var.name}]")
    if any(entry.startswith("missing") for entry in bad):
        return bad
    for con in formulation.model.iter_rows():
        if con.violation(values) > tol:
            bad.append(con.name)
    return bad
