"""Dependence-implied presolve for the unified ILP.

Shrinks the (ddg, machine, T) model before :class:`~repro.core.formulation.
Formulation` emits a single row, using only facts implied by the
dependence constraints ``t_j - t_i >= sep_e - T * m_e`` and the modulo
structure ``t_i = T*k_i + s_i``:

**Slot windows.**  Longest paths over the dependence graph give each op an
``asap`` lower bound (implied by the constraints, so valid for every
objective) and — via the componentwise-*minimal* solution of the
difference-constraint system, which preserves all slot residues and
therefore all resource/coloring structure — a ``latest`` upper bound
(rounds every edge up to ``w + T - 1``).  The minimal solution also
minimizes ``sum t_i``, so the upper bounds are valid for ``feasibility``,
``min_sum_t`` and ``min_fu``; they are *not* valid for ``min_buffers`` /
``min_lifetimes`` (shrinking starts can grow differences), where only the
horizon bound is used.

**Anchoring.**  Every constraint except the variable boxes is invariant
under a uniform shift ``t_i += delta``, and all objectives except
``min_sum_t`` are too.  For those objectives one op ``r`` (in the largest
strongly-coupled component) is anchored to pattern slot 0; ops with
finite longest paths both to and from ``r`` then get absolute slot
residue sets.  Any feasible schedule can be shifted up (< T cycles) to
anchor ``r`` and, when the minimal-solution bound applies, re-minimized
back under ``latest`` — so feasibility and the optimal values of the
shift-invariant objectives are preserved exactly.

**Pair interference.**  For each pair of ops mapped by coloring, the
all-pairs longest paths bound ``t_j - t_i`` to an interval; if the
interval (or the slot windows) pins the *relative* residue ``(s_j - s_i)
mod T`` to a set disjoint from the pair's stage-offset set, the two ops
can **never** overlap (all ``o/w/hu/ov`` rows vanish); if every
realizable residue forces an overlap they **always** do (``o == 1`` is
folded into the Hu rows and all ``ov`` rows vanish).  For the remaining
*maybe* pairs, a covering subset of stages suffices: a stage whose
offset set covers all realizable overlapping residues forces ``o = 1``
whenever any stage overlaps, so ``ov`` rows are emitted for the cover
only.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.ddg.graph import Ddg
from repro.machine import Machine

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.core.incremental import LoopAnalysis

#: Pair interference classifications.
NEVER, ALWAYS, MAYBE = "never", "always", "maybe"

#: Objectives for which the minimal-solution ``latest`` bounds are sound.
_UB_OBJECTIVES = ("feasibility", "min_sum_t", "min_fu")

#: Objectives invariant under a uniform schedule shift (anchorable).
_SHIFT_INVARIANT = (
    "feasibility", "min_fu", "min_buffers", "min_lifetimes",
)


@dataclass
class PairInterference:
    """Static interference verdict for one colored op pair."""

    kind: str  # NEVER | ALWAYS | MAYBE
    #: Stages whose ``ov`` rows must be emitted (MAYBE pairs only).
    cover_stages: Tuple[int, ...] = ()


@dataclass
class PresolveInfo:
    """Everything :class:`Formulation` needs to build a pruned model."""

    t_period: int
    objective: str
    #: Dependence-infeasible at this T (positive cycle / empty window).
    infeasible: bool = False
    #: Op anchored to pattern slot 0, or None (min_sum_t, or disabled).
    anchor: Optional[int] = None
    #: Effective stage-count bound (may exceed the caller's k_max by one
    #: to leave shift-up headroom when anchoring without upper bounds).
    k_max: int = 1
    asap: List[int] = field(default_factory=list)
    latest: List[int] = field(default_factory=list)
    #: Allowed pattern slots per op; ``None`` means all of ``0..T-1``.
    slot_windows: List[Optional[FrozenSet[int]]] = field(default_factory=list)
    #: ``(k_lo, k_hi)`` per op.
    k_bounds: List[Tuple[int, int]] = field(default_factory=list)
    #: Interference verdicts keyed by ``(i, j)`` with ``i < j``, covering
    #: exactly the pairs of ops that share a stage on a colored FU type.
    pairs: Dict[Tuple[int, int], PairInterference] = field(
        default_factory=dict
    )
    seconds: float = 0.0

    def slot_allowed(self, op: int, slot: int) -> bool:
        window = self.slot_windows[op]
        return window is None or slot in window

    def allowed_slots(self, op: int) -> Sequence[int]:
        window = self.slot_windows[op]
        if window is None:
            return range(self.t_period)
        return sorted(window)


def _collapsed_edges(
    ddg: Ddg, machine: Machine, t_period: int
) -> List[Tuple[int, int, float]]:
    """Dependence edges as ``(src, dst, weight)`` with parallel edges
    collapsed to their strongest (maximum) separation ``sep - T*m``."""
    separations = ddg.dep_latencies(machine)
    best: Dict[Tuple[int, int], float] = {}
    for e, dep in enumerate(ddg.deps):
        weight = float(separations[e] - t_period * dep.distance)
        key = (dep.src, dep.dst)
        if key not in best or weight > best[key]:
            best[key] = weight
    return [(s, d, w) for (s, d), w in best.items()]


def _longest_paths(n: int, edges: List[Tuple[int, int, float]]) -> np.ndarray:
    """All-pairs longest path matrix (``-inf`` where unreachable)."""
    dist = np.full((n, n), -np.inf)
    np.fill_diagonal(dist, 0.0)
    for src, dst, weight in edges:
        if src == dst:
            continue  # self-loops only matter for cycle detection
        if weight > dist[src, dst]:
            dist[src, dst] = weight
    for k in range(n):
        np.maximum(dist, dist[:, k:k + 1] + dist[k:k + 1, :], out=dist)
    return dist


def _residues(lo: float, hi: float, t_period: int) -> Optional[FrozenSet[int]]:
    """Residues mod T of the integers in ``[lo, hi]``; None if all."""
    width = hi - lo + 1
    if width >= t_period:
        return None
    base = int(math.ceil(lo))
    return frozenset(
        (base + d) % t_period for d in range(int(hi) - base + 1)
    )


def _intersect(
    a: Optional[FrozenSet[int]], b: Optional[FrozenSet[int]]
) -> Optional[FrozenSet[int]]:
    if a is None:
        return b
    if b is None:
        return a
    return a & b


def _stage_offsets(
    cycles_i: Sequence[int], cycles_j: Sequence[int], t_period: int
) -> FrozenSet[int]:
    """Relative residues ``(s_j - s_i) mod T`` at which i and j collide on
    a stage i occupies at offsets ``cycles_i`` and j at ``cycles_j``."""
    return frozenset(
        (l1 - l2) % t_period for l1 in cycles_i for l2 in cycles_j
    )


def presolve(
    ddg: Ddg,
    machine: Machine,
    t_period: int,
    objective: str = "feasibility",
    k_max: int = 1,
    colored: Optional[Dict[str, List[int]]] = None,
    analysis: Optional["LoopAnalysis"] = None,
) -> PresolveInfo:
    """Analyze one (ddg, machine, T) instance; see the module docstring.

    ``colored`` maps FU-type names to the op indices whose mapping the
    formulation decides by coloring — pair interference is classified for
    exactly those groups.

    ``analysis`` optionally supplies the T-independent products (edge
    frontiers, pair stage-offset differences, resource floors) from a
    :class:`repro.core.incremental.LoopAnalysis` built for the *same*
    (ddg, machine) pair.  The analysis-fed path produces byte-identical
    :class:`PresolveInfo` — it only skips recomputation.
    """
    start = time.monotonic()
    n = ddg.num_ops
    info = PresolveInfo(t_period=t_period, objective=objective, k_max=k_max)
    info.slot_windows = [None] * n
    info.asap = [0] * n
    info.latest = [t_period * k_max + t_period - 1] * n
    info.k_bounds = [(0, k_max)] * n
    if n == 0:
        info.seconds = time.monotonic() - start
        return info

    if analysis is not None:
        edges = analysis.collapsed_edges(t_period)
    else:
        edges = _collapsed_edges(ddg, machine, t_period)
    dist = _longest_paths(n, edges)
    # A positive cycle (including a positive self-loop) means no schedule
    # exists at this period regardless of resources.
    positive_self = any(
        src == dst and weight > 0 for src, dst, weight in edges
    )
    if positive_self or float(np.max(np.diag(dist))) > 0:
        info.infeasible = True
        info.seconds = time.monotonic() - start
        return info

    # Resource floor: each use of a reservation stage occupies exactly
    # one of the R_r * T modulo slot-copies, so T below the busiest
    # stage's ceil(uses / count) admits no schedule (the emitted
    # capacity rows are LP-infeasible by the same counting argument).
    if analysis is not None:
        res_floor = analysis.t_res_floor
    else:
        from repro.core.bounds import per_type_t_res

        res_floor = max(per_type_t_res(ddg, machine).values(), default=1)
    if t_period < res_floor:
        info.infeasible = True
        info.seconds = time.monotonic() - start
        return info

    allow_ub = objective in _UB_OBJECTIVES
    allow_anchor = objective in _SHIFT_INVARIANT
    if allow_anchor and not allow_ub:
        # Shift-up headroom: anchoring may push every start up by < T.
        k_max = k_max + 1
        info.k_max = k_max
    horizon = t_period * k_max + t_period - 1

    finite = dist > -np.inf
    asap = np.maximum(np.where(finite, dist, -np.inf).max(axis=0), 0.0)
    tail = np.maximum(np.where(finite, dist, -np.inf).max(axis=1), 0.0)
    latest = np.full(n, float(horizon)) - tail
    if allow_ub:
        # Bellman-Ford on the rounded-up system: the minimal solution
        # with any fixed residues satisfies t_i <= ub_i.
        ub = np.full(n, float(t_period - 1))
        slack = float(t_period - 1)
        for _ in range(max(1, n - 1)):
            changed = False
            for src, dst, weight in edges:
                if src == dst:
                    continue
                candidate = min(ub[src] + weight + slack, float(horizon))
                if candidate > ub[dst]:
                    ub[dst] = candidate
                    changed = True
            if not changed:
                break
        latest = np.minimum(latest, ub)
    latest = np.maximum(latest, asap)

    info.asap = [int(v) for v in asap]
    info.latest = [int(v) for v in latest]

    # Anchor: largest strongly-coupled component (finite paths both ways);
    # singleton fallback still kills T-1 assignment variables.
    anchor: Optional[int] = None
    if allow_anchor:
        coupled = finite & finite.T
        best_size, best_member = 0, 0
        seen = np.zeros(n, dtype=bool)
        for i in range(n):
            if seen[i]:
                continue
            members = np.where(coupled[i])[0]
            seen[members] = True
            if len(members) > best_size:
                best_size = len(members)
                best_member = int(members[0])
        anchor = best_member
        info.anchor = anchor

    windows: List[Optional[FrozenSet[int]]] = [None] * n
    for i in range(n):
        windows[i] = _residues(asap[i], latest[i], t_period)
    if anchor is not None:
        windows[anchor] = _intersect(windows[anchor], frozenset({0}))
        for i in range(n):
            if i == anchor:
                continue
            if finite[anchor, i] and finite[i, anchor]:
                lo = dist[anchor, i]
                hi = -dist[i, anchor]
                windows[i] = _intersect(
                    windows[i], _residues(lo, hi, t_period)
                )
    if any(w is not None and not w for w in windows):
        info.infeasible = True
        info.slot_windows = [None] * n
        info.seconds = time.monotonic() - start
        return info
    info.slot_windows = windows

    k_bounds: List[Tuple[int, int]] = []
    for i in range(n):
        k_lo = max(0, math.ceil((asap[i] - (t_period - 1)) / t_period))
        k_hi = min(k_max, math.floor(latest[i] / t_period))
        if k_hi < k_lo:
            info.infeasible = True
            info.slot_windows = [None] * n
            info.seconds = time.monotonic() - start
            return info
        k_bounds.append((int(k_lo), int(k_hi)))
    info.k_bounds = k_bounds

    if colored:
        info.pairs = _classify_pairs(
            ddg, machine, t_period, colored, dist, finite, windows,
            analysis=analysis,
        )
    info.seconds = time.monotonic() - start
    return info


def _pair_delta(
    i: int,
    j: int,
    t_period: int,
    dist: np.ndarray,
    finite: np.ndarray,
    windows: List[Optional[FrozenSet[int]]],
) -> Optional[FrozenSet[int]]:
    """Realizable relative residues ``(s_j - s_i) mod T``; None if all."""
    delta: Optional[FrozenSet[int]] = None
    if finite[i, j] and finite[j, i]:
        delta = _residues(dist[i, j], -dist[j, i], t_period)
    wi, wj = windows[i], windows[j]
    if wi is not None and wj is not None:
        from_windows = frozenset(
            (b - a) % t_period for a in wi for b in wj
        )
        delta = _intersect(delta, from_windows)
    return delta


def _classify_pairs(
    ddg: Ddg,
    machine: Machine,
    t_period: int,
    colored: Dict[str, List[int]],
    dist: np.ndarray,
    finite: np.ndarray,
    windows: List[Optional[FrozenSet[int]]],
    analysis: Optional["LoopAnalysis"] = None,
) -> Dict[Tuple[int, int], PairInterference]:
    pairs: Dict[Tuple[int, int], PairInterference] = {}
    all_residues = frozenset(range(t_period))
    for fu_name, op_indices in colored.items():
        stages = machine.stage_count(fu_name)
        cycles = (
            None if analysis is not None else {
                i: machine.reservation_for(ddg.ops[i].op_class)
                for i in op_indices
            }
        )
        for pos, i in enumerate(op_indices):
            for j in op_indices[pos + 1:]:
                offsets_by_stage: Dict[int, FrozenSet[int]] = {}
                # Per-class tables may have fewer stages than the FU's
                # widest table; past-the-end stages are simply unused
                # (the formulation applies the same rule).
                for s in range(stages):
                    if analysis is not None:
                        # The cached raw differences reduce to exactly
                        # ``_stage_offsets`` mod T; empty iff either op
                        # has no cycles on the stage.
                        diffs = analysis.pair_stage_diffs(i, j, s)
                        if diffs:
                            offsets_by_stage[s] = frozenset(
                                d % t_period for d in diffs
                            )
                        continue
                    ci = (cycles[i].stage_cycles(s)
                          if s < cycles[i].num_stages else [])
                    cj = (cycles[j].stage_cycles(s)
                          if s < cycles[j].num_stages else [])
                    if ci and cj:
                        offsets_by_stage[s] = _stage_offsets(
                            ci, cj, t_period
                        )
                if not offsets_by_stage:
                    continue  # no shared stage: formulation skips too
                overlap_set = frozenset().union(*offsets_by_stage.values())
                delta = _pair_delta(i, j, t_period, dist, finite, windows)
                realizable = (
                    overlap_set if delta is None else delta & overlap_set
                )
                if not realizable:
                    pairs[(i, j)] = PairInterference(NEVER)
                    continue
                possible = all_residues if delta is None else delta
                if possible <= overlap_set:
                    pairs[(i, j)] = PairInterference(ALWAYS)
                    continue
                # Greedy cover: pick stages until every realizable
                # overlapping residue is witnessed by some emitted stage.
                remaining = set(realizable)
                cover: List[int] = []
                while remaining:
                    best_stage = max(
                        offsets_by_stage,
                        key=lambda s: (len(offsets_by_stage[s]
                                           & remaining), -s),
                    )
                    gained = offsets_by_stage[best_stage] & remaining
                    if not gained:  # pragma: no cover - defensive
                        cover = sorted(offsets_by_stage)
                        break
                    cover.append(best_stage)
                    remaining -= gained
                pairs[(i, j)] = PairInterference(
                    MAYBE, cover_stages=tuple(sorted(cover))
                )
    return pairs
