"""The linear periodic schedule form (paper §3, Eq. 1/7/22).

A software-pipelined schedule assigns instruction ``i`` of iteration ``j``
the start time ``j*T + t_i``.  The vector ``T = (t_0, ..., t_{N-1})``
decomposes as

    T = T_period * K + A' @ [0, 1, ..., T_period - 1]'

where ``K[i] = t_i // T_period`` counts which pipeline *stage* (in the
software sense) instruction ``i`` occupies, and ``A`` is the 0-1
``T_period x N`` matrix with ``A[t][i] = 1`` iff ``i`` starts at slot
``t`` of the repetitive pattern.  ``A`` is exactly the modulo reservation
table of instruction start slots [16, 20].
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.errors import CoreError


def decompose(start_times: Sequence[int], t_period: int) -> Tuple[List[int], np.ndarray]:
    """Split start times into (K, A) per Eq. 1.

    Returns ``K`` as a list and ``A`` as a ``(T, N)`` 0-1 integer array.
    """
    if t_period < 1:
        raise CoreError(f"period must be >= 1, got {t_period}")
    n = len(start_times)
    k_vector = [int(t) // t_period for t in start_times]
    a_matrix = np.zeros((t_period, n), dtype=int)
    for i, t in enumerate(start_times):
        if t < 0:
            raise CoreError(f"negative start time {t} for op {i}")
        a_matrix[int(t) % t_period, i] = 1
    return k_vector, a_matrix


def compose(k_vector: Sequence[int], a_matrix: np.ndarray, t_period: int) -> List[int]:
    """Rebuild start times from (K, A); inverse of :func:`decompose`."""
    a_matrix = np.asarray(a_matrix)
    if a_matrix.shape[0] != t_period:
        raise CoreError(
            f"A has {a_matrix.shape[0]} rows but period is {t_period}"
        )
    if not ((a_matrix == 0) | (a_matrix == 1)).all():
        raise CoreError("A must be a 0-1 matrix")
    if not (a_matrix.sum(axis=0) == 1).all():
        raise CoreError("each column of A must contain exactly one 1")
    slots = a_matrix.T @ np.arange(t_period)
    return [t_period * int(k) + int(p) for k, p in zip(k_vector, slots)]


def validate(start_times: Sequence[int], k_vector: Sequence[int],
             a_matrix: np.ndarray, t_period: int) -> None:
    """Assert Eq. 1 holds for the given (T, K, A) triple."""
    rebuilt = compose(k_vector, a_matrix, t_period)
    if list(map(int, start_times)) != rebuilt:
        raise CoreError(
            f"Eq. 1 violated: T={list(start_times)} but T*K + A'*tau = {rebuilt}"
        )


def offsets(start_times: Sequence[int], t_period: int) -> List[int]:
    """Pattern slots ``t_i mod T`` for each instruction."""
    return [int(t) % t_period for t in start_times]


def format_tka(
    start_times: Sequence[int],
    t_period: int,
    op_names: Sequence[str] | None = None,
) -> str:
    """Figure 3-style rendering of the T, K and A matrices."""
    k_vector, a_matrix = decompose(start_times, t_period)
    names = list(op_names) if op_names else [
        f"i{i}" for i in range(len(start_times))
    ]
    lines = [
        "T = [" + ", ".join(str(int(t)) for t in start_times) + "]'",
        "K = [" + ", ".join(str(k) for k in k_vector) + "]'",
        f"A ({t_period} x {len(start_times)}), columns = " + ", ".join(names) + ":",
    ]
    for t in range(t_period):
        row = " ".join(str(v) for v in a_matrix[t])
        lines.append(f"  t={t}: [{row}]")
    return "\n".join(lines)
