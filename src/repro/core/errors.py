"""Errors raised by the core scheduling package."""


class CoreError(Exception):
    """Base class for scheduling errors."""


class ModuloInfeasibleError(CoreError):
    """No fixed-FU schedule can exist at this T: some reservation table
    uses a stage at two cycles equal mod T (the paper's §3 modulo
    scheduling constraint)."""


class SchedulingError(CoreError):
    """The driver could not produce a schedule (bounds, budget, ...)."""


class VerificationError(CoreError):
    """An allegedly valid schedule failed independent verification."""


class MappingError(CoreError):
    """No fixed instruction-to-FU assignment exists for the given start
    times (the phenomenon motivating the paper's §4.2 coloring)."""
