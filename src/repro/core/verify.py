"""Independent schedule verification.

Never trusts the solver: checks are computed directly from the DDG, the
machine's reservation tables and the schedule's start times / colors.

* **dependences** — ``t_j - t_i >= d_i - T * m_ij`` for every edge;
* **capacity** — aggregate modulo stage usage never exceeds the FU count;
* **mapping** — every op has a color within range, and no two ops mapped
  to the same physical unit occupy one stage at the same pattern slot
  (the fixed-assignment condition of §4.2/§5).
"""

from __future__ import annotations

from repro.core.errors import VerificationError
from repro.core.schedule import Schedule


def verify_schedule(schedule: Schedule, check_mapping: bool = True) -> None:
    """Raise :class:`VerificationError` on the first violated condition."""
    _check_starts(schedule)
    _check_dependences(schedule)
    _check_capacity(schedule)
    if check_mapping:
        _check_mapping(schedule)


def _check_starts(schedule: Schedule) -> None:
    if len(schedule.starts) != schedule.ddg.num_ops:
        raise VerificationError(
            f"schedule has {len(schedule.starts)} start times for "
            f"{schedule.ddg.num_ops} ops"
        )
    for op, start in zip(schedule.ddg.ops, schedule.starts):
        if start < 0 or start != int(start):
            raise VerificationError(
                f"op {op.name!r} has invalid start time {start!r}"
            )


def _check_dependences(schedule: Schedule) -> None:
    t_period = schedule.t_period
    separations = schedule.ddg.dep_latencies(schedule.machine)
    for dep, separation in zip(schedule.ddg.deps, separations):
        slack = (
            schedule.starts[dep.dst]
            - schedule.starts[dep.src]
            - separation
            + t_period * dep.distance
        )
        if slack < 0:
            src = schedule.ddg.ops[dep.src].name
            dst = schedule.ddg.ops[dep.dst].name
            raise VerificationError(
                f"dependence {src}->{dst} (m={dep.distance}) violated by "
                f"{-slack} cycle(s) at T={t_period}"
            )


def _check_capacity(schedule: Schedule) -> None:
    machine = schedule.machine
    used_types = {
        machine.op_class(op.op_class).fu_type for op in schedule.ddg.ops
    }
    for fu_name in used_types:
        available = machine.fu_type(fu_name).count
        if schedule.fu_counts_used and fu_name in schedule.fu_counts_used:
            available = schedule.fu_counts_used[fu_name]
        grid = schedule.stage_usage_table(fu_name)
        worst = int(grid.max())
        if worst > available:
            stage, slot = divmod(int(grid.argmax()), schedule.t_period)
            raise VerificationError(
                f"FU type {fu_name!r}: stage {stage + 1} needs {worst} "
                f"units at slot {slot} but only {available} exist"
            )


def _check_mapping(schedule: Schedule) -> None:
    machine = schedule.machine
    if not schedule.has_complete_mapping:
        missing = [
            schedule.ddg.ops[i].name
            for i in range(schedule.ddg.num_ops)
            if i not in schedule.colors
        ]
        raise VerificationError(
            f"schedule has no FU assignment for: {', '.join(missing)}"
        )
    used_types = {
        machine.op_class(op.op_class).fu_type for op in schedule.ddg.ops
    }
    for fu_name in used_types:
        fu = machine.fu_type(fu_name)
        for op in schedule.ddg.ops:
            cls = machine.op_class(op.op_class)
            if cls.fu_type != fu_name:
                continue
            color = schedule.colors[op.index]
            if not 0 <= color < fu.count:
                raise VerificationError(
                    f"op {op.name!r} mapped to {fu_name}#{color} but only "
                    f"{fu.count} unit(s) exist"
                )
        for copy in range(fu.count):
            grid = schedule.stage_usage_table(fu_name, copy)
            if int(grid.max()) > 1:
                stage, slot = divmod(int(grid.argmax()), schedule.t_period)
                raise VerificationError(
                    f"structural hazard on {fu_name}#{copy}: stage "
                    f"{stage + 1} double-booked at slot {slot}"
                )
