"""The unified ILP formulation (paper §4–§5).

Given a loop DDG, a machine and a candidate period ``T``, builds one
integer linear program whose feasible points are exactly the valid
software-pipelined schedules *with a fixed instruction-to-FU mapping*:

Variables
    * ``a[t][i]``  (0-1)  — instruction ``i`` starts at pattern slot ``t``
      (the A matrix of Eq. 1; captures the modulo reservation table).
    * ``k[i]``     (int)  — the stage index of Eq. 1; the start time is
      the *expression* ``t_i = T*k_i + sum_t t * a[t][i]`` (Eq. 7/22
      substituted directly, which saves one variable per op).
    * ``c[i]``     (int in [1, R_r]) — the color/physical FU of ``i``
      (§4.2), created only for FU types where mapping is non-trivial.
    * ``w[i][j]``  (0-1) — Hu's [12] sign variables linearizing
      ``|c_i - c_j| >= 1``.
    * ``o[i][j]``  (0-1) — overlap indicators derived from stage usage.

Constraints
    * assignment:      ``sum_t a[t][i] == 1``                      (Eq. 9/23)
    * dependences:     ``t_j - t_i >= d_i - T*m_ij``               (Eq. 4/8)
    * stage capacity:  ``sum_i U_s[t][i] <= R_r``                  (Eq. 5/24)
      where ``U_s[t][i] = sum_l rho_r[s][l] * a[(t-l) mod T][i]``  (Eq. 25)
      — §4.1's cyclic usage for non-pipelined units is the special case
      of a single-stage all-ones reservation table.
    * coloring (§4.2/§5): overlap on any stage of a shared FU type forces
      different colors::

          o_ij >= U_s[t][i] + U_s[t][j] - 1        for all s, t
          c_i - c_j >= 1 - R*(1 - w_ij) - R*(1 - o_ij)
          c_j - c_i >= 1 - R*w_ij       - R*(1 - o_ij)

      (Theorem 4.1: two ops get distinct colors iff they overlap — here
      "iff" is relaxed to "if", which preserves exactly the same feasible
      schedules since extra distinctness never helps the solver.)

Objectives (selectable)
    * ``feasibility``  — pure satisfiability (rate-optimality comes from
      the driver sweeping T upward from T_lb);
    * ``min_sum_t``    — compact schedules (short prologs), the guiding
      heuristic mentioned in the paper;
    * ``min_fu``       — ``min sum_r C_r * R_r`` with FU counts as
      decision variables (Eq. 5 context);
    * ``min_buffers``  — Ning–Gao [18]-style buffer minimization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.bounds import modulo_feasible_t
from repro.core.errors import CoreError, MappingError, ModuloInfeasibleError
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg.graph import Ddg
from repro.ilp import LinExpr, Model, Solution, Variable, lin_sum
from repro.machine import Machine

OBJECTIVES = (
    "feasibility", "min_sum_t", "min_fu", "min_buffers", "min_lifetimes",
)


@dataclass
class FormulationOptions:
    """Knobs for :class:`Formulation`.

    ``mapping=None`` resolves automatically: coloring constraints are
    emitted only for FU types that need them (count >= 2 and at least one
    unclean reservation table in use).  Setting ``mapping=False`` forces
    the *counting-only* relaxation of §4.1 (used by experiment E11 to
    demonstrate that aggregate feasibility does not imply mappability);
    ``mapping=True`` forces coloring for every multi-copy type.
    """

    mapping: Optional[bool] = None
    objective: str = "feasibility"
    k_max: Optional[int] = None
    symmetry_breaking: bool = True
    enforce_modulo_constraint: bool = True
    fu_costs: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise CoreError(
                f"unknown objective {self.objective!r}; pick from {OBJECTIVES}"
            )


class Formulation:
    """One ILP instance for a (ddg, machine, T) triple."""

    def __init__(
        self,
        ddg: Ddg,
        machine: Machine,
        t_period: int,
        options: Optional[FormulationOptions] = None,
    ) -> None:
        if t_period < 1:
            raise CoreError(f"period must be >= 1, got {t_period}")
        self.ddg = ddg
        self.machine = machine
        self.t_period = t_period
        self.options = options or FormulationOptions()
        ddg.validate_against(machine)
        if self.options.enforce_modulo_constraint and not modulo_feasible_t(
            ddg, machine, t_period
        ):
            raise ModuloInfeasibleError(
                f"T={t_period} violates the modulo scheduling constraint "
                f"for loop {ddg.name!r}"
            )
        self._built = False
        self.model: Model = Model(f"{ddg.name}@T={t_period}")
        self.a: List[List[Variable]] = []        # a[t][i]
        self.k: List[Variable] = []
        self.t_expr: List[LinExpr] = []
        self.color: Dict[int, Variable] = {}
        self.fu_count_var: Dict[str, Variable] = {}
        self.colored_types: List[str] = []

    # -- structure helpers --------------------------------------------------------
    def _needs_coloring(self, fu_name: str) -> bool:
        """Whether mapping must be decided by the ILP for this FU type."""
        fu = self.machine.fu_type(fu_name)
        if self.options.mapping is False:
            return False
        ops_on = [
            op for op in self.ddg.ops
            if self.machine.op_class(op.op_class).fu_type == fu_name
        ]
        if len(ops_on) < 2 or fu.count < 2:
            # count == 1: aggregate capacity 1 already forbids any overlap,
            # which *is* the mapping constraint.
            return False
        if self.options.mapping is True:
            return True
        return any(
            not self.machine.reservation_for(op.op_class).is_clean
            for op in ops_on
        )

    def _ops_by_type(self) -> Dict[str, List[int]]:
        groups: Dict[str, List[int]] = {}
        for op in self.ddg.ops:
            fu = self.machine.op_class(op.op_class).fu_type
            groups.setdefault(fu, []).append(op.index)
        return groups

    def _default_k_max(self) -> int:
        total_latency = sum(self.ddg.latencies(self.machine))
        n = self.ddg.num_ops
        horizon = (self.t_period - 1) + total_latency + (n - 1) * (self.t_period - 1)
        return max(1, math.ceil(horizon / self.t_period) + 1)

    # -- build ----------------------------------------------------------------------
    def build(self) -> Model:
        """Construct the model (idempotent)."""
        if self._built:
            return self.model
        self._built = True
        t_period = self.t_period
        machine = self.machine
        ddg = self.ddg
        model = self.model
        n = ddg.num_ops
        k_max = self.options.k_max or self._default_k_max()

        # Variables: A matrix and K vector.
        self.a = [
            [model.add_binary(f"a[{t},{i}]") for i in range(n)]
            for t in range(t_period)
        ]
        self.k = [
            model.add_var(f"k[{i}]", lb=0, ub=k_max, integer=True)
            for i in range(n)
        ]
        # Start-time expressions t_i = T*k_i + sum_t t*a[t][i]   (Eq. 7/22)
        self.t_expr = [
            lin_sum(
                [self.k[i] * t_period]
                + [self.a[t][i] * t for t in range(1, t_period)]
            )
            for i in range(n)
        ]

        # Assignment: each op starts at exactly one slot.   (Eq. 9/23)
        for i in range(n):
            model.add(
                lin_sum(self.a[t][i] for t in range(t_period)) == 1,
                name=f"assign[{i}]",
            )

        # Dependences: t_j - t_i >= d_i - T*m_ij.            (Eq. 4/8)
        separations = ddg.dep_latencies(machine)
        for e, dep in enumerate(ddg.deps):
            rhs = separations[e] - t_period * dep.distance
            model.add(
                self.t_expr[dep.dst] - self.t_expr[dep.src] >= rhs,
                name=f"dep[{e}]",
            )

        usage = self._usage_expressions()
        self._add_capacity_rows(usage)
        self._add_coloring(usage)
        self._set_objective()
        return model

    def _usage_expressions(self) -> Dict[Tuple[int, int, int], LinExpr]:
        """``U_s[t][i]`` per Eq. 25, keyed by (op, stage, slot).

        Only (stage, slot) pairs the op can actually occupy are present.
        """
        t_period = self.t_period
        usage: Dict[Tuple[int, int, int], LinExpr] = {}
        for op in self.ddg.ops:
            table = self.machine.reservation_for(op.op_class)
            for stage in range(table.num_stages):
                cycles = table.stage_cycles(stage)
                if not cycles:
                    continue
                for t in range(t_period):
                    terms = [self.a[(t - l) % t_period][op.index] for l in cycles]
                    usage[(op.index, stage, t)] = lin_sum(terms)
        return usage

    def _add_capacity_rows(
        self, usage: Dict[Tuple[int, int, int], LinExpr]
    ) -> None:
        """Aggregate stage-capacity constraints (Eq. 5 / 24)."""
        t_period = self.t_period
        for fu_name, op_indices in self._ops_by_type().items():
            fu = self.machine.fu_type(fu_name)
            capacity: object = fu.count
            if self.options.objective == "min_fu":
                capacity = self._count_var(fu_name)
            stages = self.machine.stage_count(fu_name)
            for stage in range(stages):
                contributors = [
                    i for i in op_indices if (i, stage, 0) in usage
                ]
                if isinstance(capacity, int) and len(contributors) <= capacity:
                    continue  # row can never bind
                if not contributors:
                    continue
                for t in range(t_period):
                    total = lin_sum(
                        usage[(i, stage, t)] for i in contributors
                    )
                    self.model.add(
                        total <= capacity,
                        name=f"cap[{fu_name},s{stage},t{t}]",
                    )

    def _count_var(self, fu_name: str) -> Variable:
        if fu_name not in self.fu_count_var:
            fu = self.machine.fu_type(fu_name)
            self.fu_count_var[fu_name] = self.model.add_var(
                f"R[{fu_name}]", lb=1, ub=fu.count, integer=True
            )
        return self.fu_count_var[fu_name]

    def _add_coloring(
        self, usage: Dict[Tuple[int, int, int], LinExpr]
    ) -> None:
        """§4.2 / §5 mapping constraints via circular-arc coloring."""
        t_period = self.t_period
        model = self.model
        for fu_name, op_indices in self._ops_by_type().items():
            if not self._needs_coloring(fu_name):
                continue
            self.colored_types.append(fu_name)
            fu = self.machine.fu_type(fu_name)
            big_m = fu.count
            color_cap: object = fu.count
            if self.options.objective == "min_fu":
                color_cap = self._count_var(fu_name)
            for i in op_indices:
                self.color[i] = model.add_var(
                    f"c[{i}]", lb=1, ub=fu.count, integer=True
                )
                if not isinstance(color_cap, int):
                    model.add(self.color[i] <= color_cap,
                              name=f"cub[{i}]")
            if self.options.symmetry_breaking:
                first = op_indices[0]
                model.add(self.color[first] <= 1, name=f"sym[{fu_name}]")

            stages = self.machine.stage_count(fu_name)
            for pos, i in enumerate(op_indices):
                for j in op_indices[pos + 1:]:
                    shared = [
                        s for s in range(stages)
                        if (i, s, 0) in usage and (j, s, 0) in usage
                    ]
                    if not shared:
                        continue
                    overlap = model.add_binary(f"o[{i},{j}]")
                    for s in shared:
                        for t in range(t_period):
                            model.add(
                                overlap
                                >= usage[(i, s, t)] + usage[(j, s, t)] - 1,
                                name=f"ov[{i},{j},s{s},t{t}]",
                            )
                    sign = model.add_binary(f"w[{i},{j}]")
                    ci, cj = self.color[i], self.color[j]
                    model.add(
                        ci - cj
                        >= 1 - big_m * (1 - sign) - big_m * (1 - overlap),
                        name=f"hu1[{i},{j}]",
                    )
                    model.add(
                        cj - ci >= 1 - big_m * sign - big_m * (1 - overlap),
                        name=f"hu2[{i},{j}]",
                    )

    def _set_objective(self) -> None:
        objective = self.options.objective
        model = self.model
        if objective == "feasibility":
            model.minimize(LinExpr())
        elif objective == "min_sum_t":
            model.minimize(lin_sum(self.t_expr))
        elif objective == "min_fu":
            terms = []
            for fu_name, op_indices in self._ops_by_type().items():
                if not op_indices:
                    continue
                var = self._count_var(fu_name)
                cost = self.options.fu_costs.get(
                    fu_name, self.machine.fu_type(fu_name).cost
                )
                terms.append(var * cost)
            model.minimize(lin_sum(terms))
        elif objective == "min_buffers":
            buffers = []
            for e, dep in enumerate(self.ddg.deps):
                buf = model.add_var(
                    f"b[{e}]", lb=0, ub=None, integer=True
                )
                lifetime = (
                    self.t_expr[dep.dst]
                    - self.t_expr[dep.src]
                    + self.t_period * dep.distance
                )
                model.add(buf * self.t_period >= lifetime, name=f"buf[{e}]")
                buffers.append(buf)
            model.minimize(lin_sum(buffers))
        elif objective == "min_lifetimes":
            # Sum of issue-to-use spans — the linear (un-ceiled) cousin
            # of min_buffers; average register pressure, exactly.
            model.minimize(lin_sum(
                self.t_expr[dep.dst] - self.t_expr[dep.src]
                + self.t_period * dep.distance
                for dep in self.ddg.deps
            ))

    # -- solve / extract ----------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
    ) -> Solution:
        self.build()
        return self.model.solve(backend=backend, time_limit=time_limit)

    def extract(self, solution: Solution, require_mapping: bool = True) -> Schedule:
        """Turn a feasible solution into a :class:`Schedule`.

        Ops whose FU types needed no coloring variables get a greedy
        first-fit mapping (always possible for those types).  Under the
        counting-only relaxation (``mapping=False``) the greedy mapper
        may fail on unclean types; pass ``require_mapping=False`` to get
        back a schedule with a partial mapping instead of the
        :class:`MappingError` (experiment E11 relies on observing both).
        """
        if not self._built:
            raise CoreError("build() (or solve()) must run before extract()")
        if not solution.status.has_solution:
            raise CoreError(
                f"cannot extract a schedule from status {solution.status}"
            )
        starts = [
            int(round(solution.value(self.t_expr[i])))
            for i in range(self.ddg.num_ops)
        ]
        colors: Dict[int, int] = {
            i: solution.int_value(var) - 1 for i, var in self.color.items()
        }
        try:
            colors = greedy_mapping(
                self.ddg, self.machine, starts, self.t_period, partial=colors
            )
        except MappingError:
            if require_mapping:
                raise
        fu_counts = None
        if self.fu_count_var:
            fu_counts = {
                name: solution.int_value(var)
                for name, var in self.fu_count_var.items()
            }
        return Schedule(
            ddg=self.ddg,
            machine=self.machine,
            t_period=self.t_period,
            starts=starts,
            colors=colors,
            fu_counts_used=fu_counts,
        )
