"""The unified ILP formulation (paper §4–§5).

Given a loop DDG, a machine and a candidate period ``T``, builds one
integer linear program whose feasible points are exactly the valid
software-pipelined schedules *with a fixed instruction-to-FU mapping*:

Variables
    * ``a[t][i]``  (0-1)  — instruction ``i`` starts at pattern slot ``t``
      (the A matrix of Eq. 1; captures the modulo reservation table).
    * ``k[i]``     (int)  — the stage index of Eq. 1; the start time is
      the *expression* ``t_i = T*k_i + sum_t t * a[t][i]`` (Eq. 7/22
      substituted directly, which saves one variable per op).
    * ``c[i]``     (int in [1, R_r]) — the color/physical FU of ``i``
      (§4.2), created only for FU types where mapping is non-trivial.
    * ``w[i][j]``  (0-1) — Hu's [12] sign variables linearizing
      ``|c_i - c_j| >= 1``.
    * ``o[i][j]``  (0-1) — overlap indicators derived from stage usage.

Constraints
    * assignment:      ``sum_t a[t][i] == 1``                      (Eq. 9/23)
    * dependences:     ``t_j - t_i >= d_i - T*m_ij``               (Eq. 4/8)
    * stage capacity:  ``sum_i U_s[t][i] <= R_r``                  (Eq. 5/24)
      where ``U_s[t][i] = sum_l rho_r[s][l] * a[(t-l) mod T][i]``  (Eq. 25)
      — §4.1's cyclic usage for non-pipelined units is the special case
      of a single-stage all-ones reservation table.
    * coloring (§4.2/§5): overlap on any stage of a shared FU type forces
      different colors::

          o_ij >= U_s[t][i] + U_s[t][j] - 1        for all s, t
          c_i - c_j >= 1 - R*(1 - w_ij) - R*(1 - o_ij)
          c_j - c_i >= 1 - R*w_ij       - R*(1 - o_ij)

      (Theorem 4.1: two ops get distinct colors iff they overlap — here
      "iff" is relaxed to "if", which preserves exactly the same feasible
      schedules since extra distinctness never helps the solver.)

Objectives (selectable)
    * ``feasibility``  — pure satisfiability (rate-optimality comes from
      the driver sweeping T upward from T_lb);
    * ``min_sum_t``    — compact schedules (short prologs), the guiding
      heuristic mentioned in the paper;
    * ``min_fu``       — ``min sum_r C_r * R_r`` with FU counts as
      decision variables (Eq. 5 context);
    * ``min_buffers``  — Ning–Gao [18]-style buffer minimization.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.bounds import modulo_feasible_t
from repro.core.errors import CoreError, MappingError, ModuloInfeasibleError
from repro.core.presolve import ALWAYS, MAYBE, NEVER, PresolveInfo, presolve
from repro.core.schedule import Schedule, greedy_mapping
from repro.ddg.graph import Ddg
from repro.ilp import LinExpr, Model, Solution, Variable, lin_sum
from repro.ilp.model import GE, LE, EQ, ModelStats, RowSpec
from repro.machine import Machine

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.core.incremental import LoopAnalysis, SweepContext

OBJECTIVES = (
    "feasibility", "min_sum_t", "min_fu", "min_buffers", "min_lifetimes",
)


@dataclass
class FormulationOptions:
    """Knobs for :class:`Formulation`.

    ``mapping=None`` resolves automatically: coloring constraints are
    emitted only for FU types that need them (count >= 2 and at least one
    unclean reservation table in use).  Setting ``mapping=False`` forces
    the *counting-only* relaxation of §4.1 (used by experiment E11 to
    demonstrate that aggregate feasibility does not imply mappability);
    ``mapping=True`` forces coloring for every multi-copy type.
    """

    mapping: Optional[bool] = None
    objective: str = "feasibility"
    k_max: Optional[int] = None
    symmetry_breaking: bool = True
    enforce_modulo_constraint: bool = True
    fu_costs: Dict[str, float] = field(default_factory=dict)
    #: Run the dependence-implied presolve (:mod:`repro.core.presolve`)
    #: before emitting the model: slot-window variable elimination, pair
    #: interference pruning, capacity row dedup.  Preserves feasibility
    #: and every objective's optimum exactly; disable to get the plain
    #: paper encoding (useful for differential testing and profiling).
    presolve: bool = True

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise CoreError(
                f"unknown objective {self.objective!r}; pick from {OBJECTIVES}"
            )


class Formulation:
    """One ILP instance for a (ddg, machine, T) triple."""

    def __init__(
        self,
        ddg: Ddg,
        machine: Machine,
        t_period: int,
        options: Optional[FormulationOptions] = None,
        context: Optional["SweepContext"] = None,
    ) -> None:
        if t_period < 1:
            raise CoreError(f"period must be >= 1, got {t_period}")
        self.ddg = ddg
        self.machine = machine
        self.t_period = t_period
        self.options = options or FormulationOptions()
        ddg.validate_against(machine)
        if self.options.enforce_modulo_constraint and not modulo_feasible_t(
            ddg, machine, t_period
        ):
            raise ModuloInfeasibleError(
                f"T={t_period} violates the modulo scheduling constraint "
                f"for loop {ddg.name!r}"
            )
        self._built = False
        self.model: Model = Model(f"{ddg.name}@T={t_period}")
        # Backref for backends that need formulation structure rather
        # than bare rows (the SAT lowering reads slot windows, pair
        # verdicts and reservation shapes straight from here).
        self.model._formulation = self
        self.a: List[List[Optional[Variable]]] = []   # a[t][i]; None = pruned
        self.k: List[Variable] = []
        self.t_expr: List[LinExpr] = []
        self.color: Dict[int, Variable] = {}
        self.fu_count_var: Dict[str, Variable] = {}
        self.colored_types: List[str] = []
        # Coloring side variables, keyed so a warm start can assign them:
        # w[i,j] sign binaries, o[i,j] overlap binaries (absent for pairs
        # where presolve folded the indicator), b[e] buffer counts, and
        # the per-type op order the sym[...] caps were emitted along.
        self.sign_var: Dict[Tuple[int, int], Variable] = {}
        self.overlap_var: Dict[Tuple[int, int], Variable] = {}
        self.buffer_var: Dict[int, Variable] = {}
        self.color_order: Dict[str, List[int]] = {}
        self.presolve_info: Optional[PresolveInfo] = None
        self.model_stats: Optional[ModelStats] = None
        # Whether every usage expression is 0/1 at integer points (true
        # whenever T satisfies the modulo scheduling constraint); several
        # redundancy-based prunings rely on it.
        self._u_binary = True
        self._elim_vars = 0
        self._elim_rows = 0
        self._elim_nnz = 0
        # Incremental sweep state: a SweepContext supplies the shared
        # T-independent LoopAnalysis; the fed build produces a
        # byte-identical model and counts rows it re-derived from the
        # carried state as "reused".
        self._context = context
        self._analysis: Optional["LoopAnalysis"] = None
        self._analysis_seconds = 0.0
        self._reused_rows = 0
        self._usage: Optional[
            Dict[Tuple[int, int, int], Dict[Variable, float]]
        ] = None

    @property
    def analysis(self) -> Optional["LoopAnalysis"]:
        """The shared T-independent analysis this build drew from (if any)."""
        return self._analysis

    # -- structure helpers --------------------------------------------------------
    def _needs_coloring(self, fu_name: str) -> bool:
        """Whether mapping must be decided by the ILP for this FU type."""
        if self.options.mapping is False:
            return False
        if self._analysis is not None:
            group = (
                self._analysis.coloring_forced
                if self.options.mapping is True
                else self._analysis.coloring_auto
            )
            return fu_name in group
        fu = self.machine.fu_type(fu_name)
        ops_on = [
            op for op in self.ddg.ops
            if self.machine.op_class(op.op_class).fu_type == fu_name
        ]
        if len(ops_on) < 2 or fu.count < 2:
            # count == 1: aggregate capacity 1 already forbids any overlap,
            # which *is* the mapping constraint.
            return False
        if self.options.mapping is True:
            return True
        return any(
            not self.machine.reservation_for(op.op_class).is_clean
            for op in ops_on
        )

    def _ops_by_type(self) -> Dict[str, List[int]]:
        if self._analysis is not None:
            return self._analysis.ops_by_type
        groups: Dict[str, List[int]] = {}
        for op in self.ddg.ops:
            fu = self.machine.op_class(op.op_class).fu_type
            groups.setdefault(fu, []).append(op.index)
        return groups

    def _default_k_max(self) -> int:
        if self._analysis is not None:
            total_latency = self._analysis.total_latency
        else:
            total_latency = sum(self.ddg.latencies(self.machine))
        n = self.ddg.num_ops
        horizon = (self.t_period - 1) + total_latency + (n - 1) * (self.t_period - 1)
        return max(1, math.ceil(horizon / self.t_period) + 1)

    def _stage_cycles(self, op_index: int, stage: int) -> List[int]:
        if self._analysis is not None:
            return self._analysis.stage_cycles.get((op_index, stage), ())
        table = self.machine.reservation_for(
            self.ddg.ops[op_index].op_class
        )
        if stage >= table.num_stages:
            return []
        return table.stage_cycles(stage)

    # -- build ----------------------------------------------------------------------
    def build(self) -> Model:
        """Construct the model (idempotent)."""
        if self._built:
            return self.model
        self._built = True
        build_start = time.monotonic()
        t_period = self.t_period
        machine = self.machine
        ddg = self.ddg
        model = self.model
        n = ddg.num_ops
        if self._context is not None:
            built_before = self._context.stats.analyses_built
            self._analysis = self._context.analysis_for(machine)
            if self._context.stats.analyses_built > built_before:
                # This attempt paid the one-off analysis construction.
                self._analysis_seconds = self._analysis.seconds
        k_max = self.options.k_max or self._default_k_max()
        self._u_binary = (
            self.options.enforce_modulo_constraint
            or modulo_feasible_t(ddg, machine, t_period)
        )

        colored = {
            fu: ops for fu, ops in self._ops_by_type().items()
            if self._needs_coloring(fu)
        }
        info: Optional[PresolveInfo] = None
        if self.options.presolve:
            info = presolve(
                ddg, machine, t_period,
                objective=self.options.objective,
                k_max=k_max,
                colored=colored,
                analysis=self._analysis,
            )
            self.presolve_info = info
        active = info is not None and not info.infeasible
        if active:
            k_max = info.k_max
        if info is not None and info.infeasible:
            # Dependence-infeasible at this T: record the verdict as a
            # trivially unsatisfiable row (0 == 1) so every backend
            # returns INFEASIBLE without search, then fall through to
            # the plain encoding for introspection.
            model.add(LinExpr() == 1, name="presolve_infeasible")

        # Variables: A matrix (windowed) and K vector (bounded).
        self.a = []
        for t in range(t_period):
            row: List[Optional[Variable]] = []
            for i in range(n):
                if active and not info.slot_allowed(i, t):
                    row.append(None)
                    self._elim_vars += 1
                else:
                    row.append(model.add_binary(f"a[{t},{i}]"))
            self.a.append(row)
        if active:
            self.k = [
                model.add_var(
                    f"k[{i}]", lb=info.k_bounds[i][0],
                    ub=info.k_bounds[i][1], integer=True,
                )
                for i in range(n)
            ]
        else:
            self.k = [
                model.add_var(f"k[{i}]", lb=0, ub=k_max, integer=True)
                for i in range(n)
            ]
        # Start-time expressions t_i = T*k_i + sum_t t*a[t][i]   (Eq. 7/22)
        self.t_expr = [
            lin_sum(
                [self.k[i] * t_period]
                + [self.a[t][i] * t for t in range(1, t_period)
                   if self.a[t][i] is not None]
            )
            for i in range(n)
        ]

        # Assignment: each op starts at exactly one slot.   (Eq. 9/23)
        assign_rows: List[RowSpec] = []
        for i in range(n):
            terms: Dict[Variable, float] = {
                self.a[t][i]: 1.0 for t in range(t_period)
                if self.a[t][i] is not None
            }
            self._elim_nnz += t_period - len(terms)
            assign_rows.append((terms, EQ, 1.0, f"assign[{i}]"))
        model.add_rows(assign_rows)

        # Dependences: t_j - t_i >= d_i - T*m_ij.            (Eq. 4/8)
        if self._analysis is not None:
            separations = self._analysis.dep_latencies
            self._reused_rows += len(ddg.deps)
        else:
            separations = ddg.dep_latencies(machine)
        for e, dep in enumerate(ddg.deps):
            rhs = separations[e] - t_period * dep.distance
            model.add(
                self.t_expr[dep.dst] - self.t_expr[dep.src] >= rhs,
                name=f"dep[{e}]",
            )

        usage = self._usage_terms()
        self._usage = usage
        self._add_capacity_rows(usage, active)
        self._add_coloring(usage, info if active else None)
        self._set_objective()

        presolve_seconds = info.seconds if info is not None else 0.0
        sizes = model.stats()
        self.model_stats = ModelStats(
            variables=sizes["variables"],
            integer_variables=sizes["integer_variables"],
            constraints=sizes["constraints"],
            nonzeros=sizes["nonzeros"],
            eliminated_variables=self._elim_vars,
            eliminated_constraints=self._elim_rows,
            eliminated_nonzeros=self._elim_nnz,
            reused_rows=self._reused_rows,
            rebuilt_rows=sizes["constraints"] - self._reused_rows,
            presolve_seconds=presolve_seconds,
            analysis_seconds=self._analysis_seconds,
            build_seconds=(
                time.monotonic() - build_start - presolve_seconds
            ),
        )
        return model

    def _usage_terms(self) -> Dict[Tuple[int, int, int], Dict[Variable, float]]:
        """``U_s[t][i]`` per Eq. 25 as raw coefficient dicts.

        Keyed by (op, stage, slot); entries exist only where at least one
        surviving ``a`` variable contributes.
        """
        t_period = self.t_period
        usage: Dict[Tuple[int, int, int], Dict[Variable, float]] = {}
        for op in self.ddg.ops:
            if self._analysis is not None:
                op_stages = self._analysis.op_stages[op.index]
            else:
                table = self.machine.reservation_for(op.op_class)
                op_stages = [
                    (stage, table.stage_cycles(stage))
                    for stage in range(table.num_stages)
                    if table.stage_cycles(stage)
                ]
            for stage, cycles in op_stages:
                for t in range(t_period):
                    terms: Dict[Variable, float] = {}
                    for latency in cycles:
                        var = self.a[(t - latency) % t_period][op.index]
                        if var is not None:
                            terms[var] = terms.get(var, 0.0) + 1.0
                    if terms:
                        usage[(op.index, stage, t)] = terms
        return usage

    def _add_capacity_rows(
        self,
        usage: Dict[Tuple[int, int, int], Dict[Variable, float]],
        active: bool,
    ) -> None:
        """Aggregate stage-capacity constraints (Eq. 5 / 24).

        A stage whose user count cannot exceed the FU count emits no rows
        — including under ``min_fu``, where the count variable's lower
        bound of 1 plays the role of the constant capacity.  With
        presolve active, rows that lost all contributors to slot windows
        are dropped, per-slot rows whose surviving contributors fit under
        the capacity floor are dropped, and rows identical to an earlier
        one (clean pipeline stages are shifted copies of each other) are
        emitted once.
        """
        t_period = self.t_period
        rows: List[RowSpec] = []
        seen: Dict[tuple, bool] = {}
        for fu_name, op_indices in self._ops_by_type().items():
            fu = self.machine.fu_type(fu_name)
            capacity: object = fu.count
            if self.options.objective == "min_fu":
                capacity = self._count_var(fu_name)
            cap_floor = (
                capacity if isinstance(capacity, int)
                else int(capacity.lb)
            )
            stages = self.machine.stage_count(fu_name)
            for stage in range(stages):
                users = [
                    i for i in op_indices if self._stage_cycles(i, stage)
                ]
                if len(users) <= cap_floor:
                    continue  # no slot can ever exceed the capacity
                base_nnz = sum(
                    len(self._stage_cycles(i, stage)) for i in users
                ) + (0 if isinstance(capacity, int) else 1)
                for t in range(t_period):
                    terms: Dict[Variable, float] = {}
                    contributors = 0
                    for i in users:
                        part = usage.get((i, stage, t))
                        if not part:
                            continue
                        contributors += 1
                        for var, coef in part.items():
                            terms[var] = terms.get(var, 0.0) + coef
                    if active and not terms:
                        self._elim_rows += 1
                        self._elim_nnz += base_nnz
                        continue
                    if (active and self._u_binary
                            and contributors <= cap_floor):
                        self._elim_rows += 1
                        self._elim_nnz += base_nnz
                        continue
                    if isinstance(capacity, int):
                        rhs = float(capacity)
                    else:
                        terms[capacity] = terms.get(capacity, 0.0) - 1.0
                        rhs = 0.0
                    if active:
                        key = (
                            tuple(sorted(
                                (var.index, coef)
                                for var, coef in terms.items()
                            )),
                            rhs,
                        )
                        if key in seen:
                            self._elim_rows += 1
                            self._elim_nnz += len(terms)
                            continue
                        seen[key] = True
                        self._elim_nnz += base_nnz - len(terms)
                    rows.append(
                        (terms, LE, rhs, f"cap[{fu_name},s{stage},t{t}]")
                    )
        if self._analysis is not None:
            # Group membership, stage structure and per-stage cycle lists
            # all came from the carried analysis.
            self._reused_rows += len(rows)
        self.model.add_rows(rows)

    def _count_var(self, fu_name: str) -> Variable:
        if fu_name not in self.fu_count_var:
            fu = self.machine.fu_type(fu_name)
            self.fu_count_var[fu_name] = self.model.add_var(
                f"R[{fu_name}]", lb=1, ub=fu.count, integer=True
            )
        return self.fu_count_var[fu_name]

    def _add_coloring(
        self,
        usage: Dict[Tuple[int, int, int], Dict[Variable, float]],
        info: Optional[PresolveInfo],
    ) -> None:
        """§4.2 / §5 mapping constraints via circular-arc coloring.

        With presolve info available, the static interference relation
        gates what gets emitted per pair: NEVER pairs vanish entirely,
        ALWAYS pairs keep only the Hu rows with the overlap indicator
        folded to 1, and MAYBE pairs emit ``ov`` rows only on a covering
        stage subset (a residue that overlaps anywhere overlaps on a
        cover stage) and only at slots both ops can occupy.
        """
        t_period = self.t_period
        model = self.model
        # Reused-row accounting: a pair whose interference verdict is
        # unchanged from the previous attempt's contributes its rows as
        # "reused" (the delta over the T-1 model re-derives nothing for
        # it beyond slot indices).
        prev_pairs = None
        if self._analysis is not None and info is not None:
            record = self._analysis.last_pair_verdicts.get(
                self.options.mapping
            )
            if record is not None and record[0] != t_period:
                prev_pairs = record[1]
        for fu_name, op_indices in self._ops_by_type().items():
            if not self._needs_coloring(fu_name):
                continue
            self.colored_types.append(fu_name)
            fu = self.machine.fu_type(fu_name)
            big_m = fu.count
            color_cap: object = fu.count
            if self.options.objective == "min_fu":
                color_cap = self._count_var(fu_name)
            for i in op_indices:
                self.color[i] = model.add_var(
                    f"c[{i}]", lb=1, ub=fu.count, integer=True
                )
                if not isinstance(color_cap, int):
                    model.add(self.color[i] <= color_cap,
                              name=f"cub[{i}]")
            if info is not None:
                # Colors are interchangeable, so any coloring can be
                # relabeled by first appearance along a fixed op
                # order; ordering by earliest possible start slot
                # makes the caps bite where the solver branches
                # first.  Caps at or above the FU count are vacuous.
                ordered = sorted(
                    op_indices, key=lambda i: (info.asap[i], i)
                )
            else:
                ordered = list(op_indices)
            self.color_order[fu_name] = ordered
            if self.options.symmetry_breaking:
                if info is not None:
                    for rank in range(min(len(ordered), fu.count - 1)):
                        model.add(
                            self.color[ordered[rank]] <= rank + 1,
                            name=f"sym[{fu_name},{rank}]",
                        )
                else:
                    first = op_indices[0]
                    model.add(self.color[first] <= 1,
                              name=f"sym[{fu_name}]")

            stages = self.machine.stage_count(fu_name)
            for pos, i in enumerate(op_indices):
                for j in op_indices[pos + 1:]:
                    shared = [
                        s for s in range(stages)
                        if self._stage_cycles(i, s)
                        and self._stage_cycles(j, s)
                    ]
                    if not shared:
                        continue
                    base_row_nnz = {
                        s: 1 + len(self._stage_cycles(i, s))
                        + len(self._stage_cycles(j, s))
                        for s in shared
                    }
                    verdict = info.pairs.get((i, j)) if info else None
                    stable = (
                        prev_pairs is not None
                        and verdict is not None
                        and prev_pairs.get((i, j)) == verdict
                    )
                    ci, cj = self.color[i], self.color[j]
                    if verdict is not None and verdict.kind == NEVER:
                        # The pair can never co-occupy a stage slot: no
                        # overlap indicator, no Hu rows.
                        self._elim_vars += 2
                        self._elim_rows += (
                            len(shared) * t_period + 2
                        )
                        self._elim_nnz += sum(
                            base_row_nnz[s] * t_period for s in shared
                        ) + 8
                        continue
                    if verdict is not None and verdict.kind == ALWAYS:
                        # Overlap is certain: fold o == 1 into the Hu
                        # rows and drop every ov row.
                        self._elim_vars += 1
                        self._elim_rows += len(shared) * t_period
                        self._elim_nnz += sum(
                            base_row_nnz[s] * t_period for s in shared
                        ) + 2
                        sign = model.add_binary(f"w[{i},{j}]")
                        self.sign_var[(i, j)] = sign
                        model.add(
                            ci - cj >= 1 - big_m * (1 - sign),
                            name=f"hu1[{i},{j}]",
                        )
                        model.add(
                            cj - ci >= 1 - big_m * sign,
                            name=f"hu2[{i},{j}]",
                        )
                        if stable:
                            self._reused_rows += 2
                        continue
                    overlap = model.add_binary(f"o[{i},{j}]")
                    self.overlap_var[(i, j)] = overlap
                    emit_stages = (
                        list(verdict.cover_stages)
                        if verdict is not None else shared
                    )
                    skipped = [s for s in shared if s not in emit_stages]
                    self._elim_rows += len(skipped) * t_period
                    self._elim_nnz += sum(
                        base_row_nnz[s] * t_period for s in skipped
                    )
                    ov_rows: List[RowSpec] = []
                    for s in emit_stages:
                        for t in range(t_period):
                            u_i = usage.get((i, s, t))
                            u_j = usage.get((j, s, t))
                            if (info is not None and self._u_binary
                                    and (u_i is None or u_j is None)):
                                # One op can't occupy (s, t) at all: the
                                # row is o >= U - 1 <= 0, vacuous.
                                self._elim_rows += 1
                                self._elim_nnz += base_row_nnz[s]
                                continue
                            terms: Dict[Variable, float] = {overlap: 1.0}
                            for part in (u_i, u_j):
                                if not part:
                                    continue
                                for var, coef in part.items():
                                    terms[var] = (
                                        terms.get(var, 0.0) - coef
                                    )
                            if info is not None:
                                self._elim_nnz += (
                                    base_row_nnz[s] - len(terms)
                                )
                            ov_rows.append((
                                terms, GE, -1.0,
                                f"ov[{i},{j},s{s},t{t}]",
                            ))
                    model.add_rows(ov_rows)
                    sign = model.add_binary(f"w[{i},{j}]")
                    self.sign_var[(i, j)] = sign
                    model.add(
                        ci - cj
                        >= 1 - big_m * (1 - sign) - big_m * (1 - overlap),
                        name=f"hu1[{i},{j}]",
                    )
                    model.add(
                        cj - ci >= 1 - big_m * sign - big_m * (1 - overlap),
                        name=f"hu2[{i},{j}]",
                    )
                    if stable:
                        self._reused_rows += len(ov_rows) + 2
        if self._analysis is not None and info is not None:
            self._analysis.last_pair_verdicts[self.options.mapping] = (
                t_period, dict(info.pairs)
            )

    def _set_objective(self) -> None:
        objective = self.options.objective
        model = self.model
        if objective == "feasibility":
            model.minimize(LinExpr())
        elif objective == "min_sum_t":
            model.minimize(lin_sum(self.t_expr))
        elif objective == "min_fu":
            terms = []
            for fu_name, op_indices in self._ops_by_type().items():
                if not op_indices:
                    continue
                var = self._count_var(fu_name)
                cost = self.options.fu_costs.get(
                    fu_name, self.machine.fu_type(fu_name).cost
                )
                terms.append(var * cost)
            model.minimize(lin_sum(terms))
        elif objective == "min_buffers":
            buffers = []
            for e, dep in enumerate(self.ddg.deps):
                buf = model.add_var(
                    f"b[{e}]", lb=0, ub=None, integer=True
                )
                self.buffer_var[e] = buf
                lifetime = (
                    self.t_expr[dep.dst]
                    - self.t_expr[dep.src]
                    + self.t_period * dep.distance
                )
                model.add(buf * self.t_period >= lifetime, name=f"buf[{e}]")
                buffers.append(buf)
            model.minimize(lin_sum(buffers))
        elif objective == "min_lifetimes":
            # Sum of issue-to-use spans — the linear (un-ceiled) cousin
            # of min_buffers; average register pressure, exactly.
            model.minimize(lin_sum(
                self.t_expr[dep.dst] - self.t_expr[dep.src]
                + self.t_period * dep.distance
                for dep in self.ddg.deps
            ))

    # -- public structure accessors (used by the SAT lowering) -------------------
    def usage_terms(
        self,
    ) -> Dict[Tuple[int, int, int], Dict[Variable, float]]:
        """The built Eq. 25 usage structure, keyed (op, stage, slot)."""
        self.build()
        assert self._usage is not None
        return self._usage

    def stage_cycles(self, op_index: int, stage: int) -> List[int]:
        """Reservation-table cycles op ``op_index`` holds ``stage``."""
        return self._stage_cycles(op_index, stage)

    def ops_by_type(self) -> Dict[str, List[int]]:
        """Op indices grouped by FU type (analysis-backed when shared)."""
        return self._ops_by_type()

    # -- solve / extract ----------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        mip_start: Optional[Dict[Variable, float]] = None,
    ) -> Solution:
        self.build()
        return self.model.solve(
            backend=backend, time_limit=time_limit, mip_start=mip_start
        )

    def extract(self, solution: Solution, require_mapping: bool = True) -> Schedule:
        """Turn a feasible solution into a :class:`Schedule`.

        Ops whose FU types needed no coloring variables get a greedy
        first-fit mapping (always possible for those types).  Under the
        counting-only relaxation (``mapping=False``) the greedy mapper
        may fail on unclean types; pass ``require_mapping=False`` to get
        back a schedule with a partial mapping instead of the
        :class:`MappingError` (experiment E11 relies on observing both).
        """
        if not self._built:
            raise CoreError("build() (or solve()) must run before extract()")
        if not solution.status.has_solution:
            raise CoreError(
                f"cannot extract a schedule from status {solution.status}"
            )
        starts = [
            int(round(solution.value(self.t_expr[i])))
            for i in range(self.ddg.num_ops)
        ]
        colors: Dict[int, int] = {
            i: solution.int_value(var) - 1 for i, var in self.color.items()
        }
        try:
            colors = greedy_mapping(
                self.ddg, self.machine, starts, self.t_period, partial=colors
            )
        except MappingError:
            if require_mapping:
                raise
        fu_counts = None
        if self.fu_count_var:
            fu_counts = {
                name: solution.int_value(var)
                for name, var in self.fu_count_var.items()
            }
        return Schedule(
            ddg=self.ddg,
            machine=self.machine,
            t_period=self.t_period,
            starts=starts,
            colors=colors,
            fu_counts_used=fu_counts,
        )
