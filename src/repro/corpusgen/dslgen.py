"""Seeded random kernels expressed in the frontend loop DSL.

The structural generator (:mod:`repro.ddg.generators`) samples graphs
directly; this module instead samples *programs* — small affine loop
bodies in the DSL of :mod:`repro.frontend` — and compiles them through
the real ``lexer -> parser -> lower`` pipeline.  The resulting DDGs
carry the dependence idioms only a compiler produces: load CSE, scalar
reduction self-loops, and exact-distance memory flow/anti/output edges
between affine references of one array.

Generation is deterministic per ``random.Random`` stream, so a corpus
manifest that records the per-loop seed reproduces every kernel
byte-for-byte (see :mod:`repro.corpusgen.manifest`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ddg.graph import Ddg
from repro.frontend import OpClassMap, compile_loop
from repro.machine import Machine


class DslGenError(ValueError):
    """The target machine cannot host DSL-compiled kernels."""


@dataclass(frozen=True)
class DslParams:
    """Knobs for :func:`random_loop_source` (manifest-serializable)."""

    min_stmts: int = 2
    max_stmts: int = 8
    #: Distinct arrays the body may read (``a0``..``a{arrays-1}``).
    arrays: int = 3
    #: Largest affine offset in array references (``a0[i-2]``).
    max_offset: int = 2
    #: Chance the body ends in a loop-carried scalar reduction.
    reduction_prob: float = 0.6
    #: Chance the body stores a result to memory.
    store_prob: float = 0.85
    #: Chance the store targets an array the body also reads, creating
    #: exact-distance memory flow/anti/output recurrences.
    recurrence_prob: float = 0.35

    def validate(self) -> None:
        if not 1 <= self.min_stmts <= self.max_stmts:
            raise DslGenError(
                f"need 1 <= min_stmts <= max_stmts, got "
                f"{self.min_stmts}..{self.max_stmts}"
            )
        if self.arrays < 1 or self.max_offset < 0:
            raise DslGenError("need arrays >= 1 and max_offset >= 0")

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "min_stmts": self.min_stmts,
            "max_stmts": self.max_stmts,
            "arrays": self.arrays,
            "max_offset": self.max_offset,
            "reduction_prob": self.reduction_prob,
            "store_prob": self.store_prob,
            "recurrence_prob": self.recurrence_prob,
        }

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "DslParams":
        unknown = set(doc) - set(cls.__dataclass_fields__)
        if unknown:
            raise DslGenError(
                f"unknown DSL parameter(s) {sorted(unknown)}"
            )
        params = cls(**doc)  # type: ignore[arg-type]
        params.validate()
        return params


def opclass_map_for(machine: Machine) -> Tuple[OpClassMap, List[str]]:
    """Pick the operator->class map and usable operators for ``machine``.

    FP-capable machines get the default ``fadd``/``fmul`` map, integer
    machines the ``add``/``mul`` map; ``*`` and ``/`` are dropped when
    the mapped class is missing, so generated sources always compile
    into classes the machine implements.
    """
    classes = machine.op_classes
    if "fadd" in classes:
        cmap = OpClassMap()
    elif "add" in classes:
        cmap = OpClassMap(add="add", sub="add", mul="mul", div="div")
    else:
        raise DslGenError(
            f"machine {machine.name!r} has neither 'fadd' nor 'add'; "
            "cannot map DSL operators onto it"
        )
    if cmap.load not in classes or cmap.store not in classes:
        raise DslGenError(
            f"machine {machine.name!r} lacks load/store classes; "
            "DSL kernels need a memory pipeline"
        )
    operators = ["+", "-"]
    if cmap.mul in classes:
        operators.append("*")
    if cmap.div in classes:
        operators.append("/")
    return cmap, operators


def random_loop_source(
    rng: random.Random,
    params: DslParams,
    operators: List[str],
) -> str:
    """Sample one DSL loop body (parseable by ``repro.frontend``)."""
    params.validate()
    if not operators:
        raise DslGenError("need at least one usable operator")
    arrays = [f"a{k}" for k in range(params.arrays)]
    temps: List[str] = []
    use_reduction = rng.random() < params.reduction_prob

    def operand() -> str:
        roll = rng.random()
        if temps and roll < 0.30:
            return rng.choice(temps)
        if roll < 0.85:
            array = rng.choice(arrays)
            offset = rng.randint(-params.max_offset, params.max_offset)
            index = "i" if offset == 0 else f"i{offset:+d}"
            return f"{array}[{index}]"
        return str(rng.randint(2, 9))

    lines = ["for i:"]
    count = rng.randint(params.min_stmts, params.max_stmts)
    for k in range(count):
        # Divides are kept rare even when available: one per ~6 stmts.
        usable = [
            op for op in operators if op != "/" or rng.random() < 0.16
        ] or ["+"]
        lines.append(
            f"    t{k} = {operand()} {rng.choice(usable)} {operand()}"
        )
        temps.append(f"t{k}")
    if use_reduction:
        acc_ops = [op for op in operators if op in "+*"] or ["+"]
        lines.append(f"    s = s {rng.choice(acc_ops)} {temps[-1]}")
    if rng.random() < params.store_prob:
        if rng.random() < params.recurrence_prob:
            target = rng.choice(arrays)
        else:
            target = "out"
        offset = rng.randint(0, params.max_offset)
        index = "i" if offset == 0 else f"i+{offset}"
        value = "s" if use_reduction else temps[-1]
        lines.append(f"    {target}[{index}] = {value}")
    return "\n".join(lines) + "\n"


def dsl_ddg(
    rng: random.Random,
    machine: Machine,
    params: DslParams,
    name: str = "dsl",
) -> Ddg:
    """Sample a DSL kernel and compile it into a DDG for ``machine``."""
    cmap, operators = opclass_map_for(machine)
    source = random_loop_source(rng, params, operators)
    ddg = compile_loop(source, name=name, classes=cmap)
    ddg.validate_against(machine)
    return ddg
