"""Paper-scale seeded corpus generation (the ``repro gen`` subsystem).

Three loop families — structural guaranteed-schedulable DDGs,
adversarial stress DDGs (:mod:`repro.ddg.generators`), and random
kernels compiled through the frontend DSL (:mod:`.dslgen`) — are
emitted into a corpus directory alongside a ``manifest.json`` that
makes the corpus reproducible byte-for-byte from the manifest alone
(:mod:`.manifest`, :mod:`.generate`).
"""

from repro.corpusgen.dslgen import (
    DslGenError,
    DslParams,
    dsl_ddg,
    opclass_map_for,
    random_loop_source,
)
from repro.corpusgen.generate import (
    default_families,
    generate_corpus,
    generate_loop,
    iter_corpus,
    loop_seed,
    regenerate_corpus,
    regenerate_from,
    resolve_machine,
    write_corpus,
)
from repro.corpusgen.manifest import (
    KIND_DDG,
    KIND_DSL,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    CorpusGenError,
    FamilySpec,
    LoopRecord,
    Manifest,
    ManifestEntrySource,
    manifest_path,
    manifest_sources,
    read_manifest,
    sha256_text,
    verify_corpus,
)

__all__ = [
    "CorpusGenError",
    "DslGenError",
    "DslParams",
    "FamilySpec",
    "KIND_DDG",
    "KIND_DSL",
    "LoopRecord",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "Manifest",
    "ManifestEntrySource",
    "default_families",
    "dsl_ddg",
    "generate_corpus",
    "generate_loop",
    "iter_corpus",
    "loop_seed",
    "manifest_path",
    "manifest_sources",
    "opclass_map_for",
    "random_loop_source",
    "read_manifest",
    "regenerate_corpus",
    "regenerate_from",
    "resolve_machine",
    "sha256_text",
    "verify_corpus",
    "write_corpus",
]
