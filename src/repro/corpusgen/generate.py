"""Corpus generation driver: families -> .ddg files + manifest.

Seeding discipline: every loop gets its own *derived seed string*
``"{master}:{family}:{index}"`` fed to ``random.Random`` (version-2
string seeding, stable across platforms and Python releases).  A loop
is therefore a pure function of (master seed, family parameters,
machine preset, index) — the manifest records all four, so any single
loop, or the whole corpus, regenerates byte-identically without the
original process's rng state.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.corpusgen.dslgen import DslParams, dsl_ddg
from repro.corpusgen.manifest import (
    KIND_DDG,
    KIND_DSL,
    CorpusGenError,
    FamilySpec,
    LoopRecord,
    Manifest,
    manifest_path,
    read_manifest,
    sha256_text,
)
from repro.ddg.builders import serialize_ddg
from repro.ddg.generators import GenParams, adversarial_params, parameterized_ddg
from repro.ddg.graph import Ddg
from repro.machine import Machine
from repro.machine.presets import PRESETS
from repro.supervision.atomicio import atomic_write_text

#: Default family split of ``mode="mixed"`` corpora.
MIXED_DSL_FRACTION = 0.2
MIXED_ADVERSARIAL_FRACTION = 0.1


def loop_seed(master_seed: int, family: str, index: int) -> str:
    """The derived per-loop seed string recorded in the manifest."""
    return f"{master_seed}:{family}:{index}"


def resolve_machine(name: str) -> Machine:
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise CorpusGenError(
            f"unknown machine preset {name!r} (known: {known}); "
            "`repro gen` manifests are preset-based so they stay "
            "self-contained"
        ) from None
    return factory()


def default_families(
    count: int,
    mode: str = "mixed",
    profile: str = "scalar",
    dsl_fraction: float = MIXED_DSL_FRACTION,
    adversarial_fraction: float = MIXED_ADVERSARIAL_FRACTION,
    base: Optional[GenParams] = None,
) -> List[FamilySpec]:
    """The standard family split for ``repro gen``.

    ``mode="mixed"`` (the default) splits ``count`` into a
    guaranteed-schedulable structural slice, a DSL-compiled kernel
    slice, and an adversarial slice; ``"guaranteed"``/``"adversarial"``
    build single-family corpora; ``"dsl"`` compiles everything.
    """
    if count < 1:
        raise CorpusGenError(f"count must be >= 1, got {count}")
    base = base or GenParams(profile=profile)
    if mode == "guaranteed":
        return [FamilySpec("guaranteed", count, KIND_DDG, base)]
    if mode == "adversarial":
        return [
            FamilySpec("adversarial", count, KIND_DDG, adversarial_params())
        ]
    if mode == "dsl":
        return [FamilySpec("dsl", count, KIND_DSL, DslParams())]
    if mode != "mixed":
        raise CorpusGenError(
            f"unknown corpus mode {mode!r}; known: "
            "mixed, guaranteed, adversarial, dsl"
        )
    if (dsl_fraction < 0 or adversarial_fraction < 0
            or dsl_fraction + adversarial_fraction > 1):
        raise CorpusGenError(
            "family fractions must be >= 0 and sum to <= 1"
        )
    n_dsl = int(count * dsl_fraction)
    n_adv = int(count * adversarial_fraction)
    n_guaranteed = count - n_dsl - n_adv
    families = [
        FamilySpec("guaranteed", n_guaranteed, KIND_DDG, base),
        FamilySpec("dsl", n_dsl, KIND_DSL, DslParams()),
        FamilySpec("adversarial", n_adv, KIND_DDG, adversarial_params()),
    ]
    return [f for f in families if f.count > 0]


def generate_loop(
    machine: Machine, family: FamilySpec, seed: str, name: str
) -> Ddg:
    """Regenerate one loop from its manifest coordinates."""
    rng = random.Random(seed)
    if family.kind == KIND_DSL:
        return dsl_ddg(rng, machine, family.params, name)
    return parameterized_ddg(rng, machine, family.params, name)


def iter_corpus(
    seed: int,
    machine: Machine,
    families: Sequence[FamilySpec],
) -> Iterator[Tuple[FamilySpec, str, Ddg]]:
    """Yield ``(family, derived_seed, ddg)`` in manifest order."""
    index = 0
    for family in families:
        for k in range(family.count):
            derived = loop_seed(seed, family.name, k)
            yield family, derived, generate_loop(
                machine, family, derived, f"gen{index:05d}"
            )
            index += 1


def generate_corpus(
    seed: int,
    machine: Machine,
    families: Sequence[FamilySpec],
) -> List[Ddg]:
    """In-memory corpus (the pytest-fixture entry point)."""
    return [ddg for _, _, ddg in iter_corpus(seed, machine, families)]


def write_corpus(
    out_dir,
    seed: int,
    machine_name: str,
    families: Sequence[FamilySpec],
) -> Manifest:
    """Emit ``.ddg`` files plus ``manifest.json`` under ``out_dir``."""
    machine = resolve_machine(machine_name)
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    records: List[LoopRecord] = []
    for family, derived, ddg in iter_corpus(seed, machine, families):
        text = serialize_ddg(ddg)
        file_name = f"{ddg.name}.ddg"
        (root / file_name).write_text(text, encoding="utf-8")
        records.append(
            LoopRecord(
                name=ddg.name,
                family=family.name,
                seed=derived,
                file=file_name,
                sha256=sha256_text(text),
                ops=ddg.num_ops,
                deps=ddg.num_deps,
            )
        )
    manifest = Manifest(
        seed=seed,
        machine=machine_name,
        families=list(families),
        loops=records,
    )
    atomic_write_text(manifest_path(root), manifest.to_json())
    return manifest


def regenerate_corpus(manifest: Manifest, out_dir) -> Manifest:
    """Rebuild a corpus from its manifest alone (byte-identical).

    Raises :class:`CorpusGenError` if any regenerated loop's checksum
    disagrees with the manifest — the manifest is the contract, and a
    generator whose output drifted must not silently overwrite it.
    """
    machine = resolve_machine(manifest.machine)
    by_name = {f.name: f for f in manifest.families}
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    for record in manifest.loops:
        family = by_name.get(record.family)
        if family is None:
            raise CorpusGenError(
                f"loop {record.name!r}: manifest references unknown "
                f"family {record.family!r}"
            )
        ddg = generate_loop(machine, family, record.seed, record.name)
        text = serialize_ddg(ddg)
        digest = sha256_text(text)
        if digest != record.sha256:
            raise CorpusGenError(
                f"loop {record.name!r}: regenerated contents do not "
                f"match the manifest checksum (expected "
                f"{record.sha256[:16]}…, got {digest[:16]}…) — the "
                "generator drifted from the published corpus"
            )
        (root / record.file).write_text(text, encoding="utf-8")
    atomic_write_text(manifest_path(root), manifest.to_json())
    return manifest


def regenerate_from(manifest_source, out_dir) -> Manifest:
    """``repro gen --from-manifest``: read, then rebuild into ``out_dir``."""
    return regenerate_corpus(read_manifest(manifest_source), out_dir)
