"""Corpus manifests: the reproducibility contract of ``repro gen``.

A generated corpus directory holds one ``.ddg`` file per loop plus a
``manifest.json`` that records *everything* needed to rebuild the
corpus byte-for-byte: the master seed, the machine preset, the family
parameter blocks, and — per loop — the derived seed string, family,
file name and SHA-256 of the exact file contents.  ``repro gen
--from-manifest`` regenerates an identical corpus from the manifest
alone; ``repro gen --check`` audits a directory against its manifest,
naming every loop and path that is missing, unreadable, corrupt or
unparsable (the same per-file diagnostics discipline the batch runner
uses).

``repro batch`` recognizes manifest-bearing directories: the loop list
comes from the manifest (not a directory glob), so a missing or
checksum-corrupt file surfaces as a per-loop error entry naming the
loop and the path instead of being silently skipped.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.corpusgen.dslgen import DslParams
from repro.ddg.generators import GenParams

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: Family kinds: direct graph sampling vs. DSL-compiled kernels.
KIND_DDG = "ddg"
KIND_DSL = "dsl"


class CorpusGenError(ValueError):
    """Malformed corpus spec, manifest, or corpus directory."""


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FamilySpec:
    """One corpus slice: ``count`` loops drawn under one parameter set."""

    name: str
    count: int
    kind: str
    params: Union[GenParams, DslParams]

    def __post_init__(self) -> None:
        if self.kind not in (KIND_DDG, KIND_DSL):
            raise CorpusGenError(
                f"family {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.count < 0:
            raise CorpusGenError(
                f"family {self.name!r}: count must be >= 0"
            )
        expected = DslParams if self.kind == KIND_DSL else GenParams
        if not isinstance(self.params, expected):
            raise CorpusGenError(
                f"family {self.name!r}: kind {self.kind!r} needs "
                f"{expected.__name__} parameters"
            )

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "kind": self.kind,
            "params": self.params.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "FamilySpec":
        try:
            kind = doc["kind"]
            params_doc = doc["params"]
            loader = (
                DslParams if kind == KIND_DSL else GenParams
            ).from_json_dict
            return cls(
                name=doc["name"],
                count=int(doc["count"]),
                kind=kind,
                params=loader(params_doc),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorpusGenError(
                f"malformed family block: {exc}"
            ) from exc


@dataclass(frozen=True)
class LoopRecord:
    """Per-loop provenance: enough to regenerate and to audit the file."""

    name: str
    family: str
    seed: str
    file: str
    sha256: str
    ops: int
    deps: int

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "file": self.file,
            "sha256": self.sha256,
            "ops": self.ops,
            "deps": self.deps,
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "LoopRecord":
        try:
            return cls(
                name=doc["name"],
                family=doc["family"],
                seed=doc["seed"],
                file=doc["file"],
                sha256=doc["sha256"],
                ops=int(doc.get("ops", 0)),
                deps=int(doc.get("deps", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorpusGenError(f"malformed loop record: {exc}") from exc


@dataclass
class Manifest:
    """The whole reproducibility record of one generated corpus."""

    seed: int
    machine: str
    families: List[FamilySpec] = field(default_factory=list)
    loops: List[LoopRecord] = field(default_factory=list)
    version: int = MANIFEST_VERSION

    @property
    def count(self) -> int:
        return len(self.loops)

    def to_json_dict(self) -> dict:
        return {
            "manifest_version": self.version,
            "tool": "repro gen",
            "seed": self.seed,
            "machine": self.machine,
            "count": self.count,
            "families": [f.to_json_dict() for f in self.families],
            "loops": [r.to_json_dict() for r in self.loops],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2) + "\n"

    @classmethod
    def from_json_dict(cls, doc: dict) -> "Manifest":
        if not isinstance(doc, dict):
            raise CorpusGenError("manifest must be a JSON object")
        version = doc.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise CorpusGenError(
                f"unsupported manifest version {version!r} "
                f"(supported: {MANIFEST_VERSION})"
            )
        try:
            seed = int(doc["seed"])
            machine = doc["machine"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CorpusGenError(f"malformed manifest header: {exc}") from exc
        return cls(
            seed=seed,
            machine=machine,
            families=[
                FamilySpec.from_json_dict(f) for f in doc.get("families", [])
            ],
            loops=[
                LoopRecord.from_json_dict(r) for r in doc.get("loops", [])
            ],
            version=version,
        )


def manifest_path(directory) -> Path:
    path = Path(directory)
    return path if path.name == MANIFEST_NAME else path / MANIFEST_NAME


def read_manifest(directory) -> Manifest:
    """Load ``manifest.json`` from a corpus directory (or direct path)."""
    path = manifest_path(directory)
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise CorpusGenError(
            f"cannot read corpus manifest {path}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorpusGenError(
            f"corpus manifest {path} is not valid JSON: {exc}"
        ) from exc
    try:
        return Manifest.from_json_dict(doc)
    except CorpusGenError as exc:
        raise CorpusGenError(f"corpus manifest {path}: {exc}") from exc


@dataclass(frozen=True)
class ManifestEntrySource:
    """A batch loop source resolved through a corpus manifest.

    Carries the manifest's loop name and expected checksum so the batch
    loader can attribute a missing or corrupt file to the exact loop
    (see :func:`repro.parallel.batch.collect_sources`).
    """

    name: str
    path: Path
    sha256: Optional[str] = None


def manifest_sources(directory) -> List[ManifestEntrySource]:
    """The batch source list of a manifest-bearing corpus directory."""
    root = Path(directory)
    manifest = read_manifest(root)
    return [
        ManifestEntrySource(
            name=record.name,
            path=root / record.file,
            sha256=record.sha256,
        )
        for record in manifest.loops
    ]


def verify_corpus(directory) -> Dict[str, List[str]]:
    """Audit a corpus directory against its manifest.

    Returns ``{"checked": [...], "problems": [...]}`` where every
    problem string names the loop and the offending path — the same
    diagnostics contract as the batch loader.  Parsability is checked
    with the real parser, so a file that no longer round-trips is
    caught here rather than mid-batch.
    """
    from repro.ddg.builders import parse_ddg
    from repro.ddg.errors import DdgError

    root = Path(directory)
    manifest = read_manifest(root)
    checked: List[str] = []
    problems: List[str] = []
    for record in manifest.loops:
        path = root / record.file
        checked.append(record.name)
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            problems.append(
                f"loop {record.name!r} ({path}): cannot read corpus "
                f"file: {type(exc).__name__}: {exc}"
            )
            continue
        digest = sha256_text(text)
        if digest != record.sha256:
            problems.append(
                f"loop {record.name!r} ({path}): corpus file does not "
                f"match its manifest checksum (expected "
                f"{record.sha256[:16]}…, got {digest[:16]}…)"
            )
            continue
        try:
            parse_ddg(text)
        except DdgError as exc:
            problems.append(
                f"loop {record.name!r} ({path}): corpus file does not "
                f"parse: {exc}"
            )
    return {"checked": checked, "problems": problems}
