"""Command-line interface: ``python -m repro <command> ...``.

Commands
    schedule     schedule one loop (named kernel or DDG text file)
    batch        schedule a corpus of .ddg files across worker processes
    gen          emit a seeded, manifest-reproducible loop corpus
    profile      compare presolve on/off model sizes and phase timings
    cache        inspect/maintain the persistent schedule store
    motivating   print the paper's §2 artifacts (Figures 1-4, Tables 1-2)
    suite        run a synthetic corpus and print Table 4-style buckets
    list         show available kernels and machine presets
    serve        run the HTTP solve daemon (submit/poll over JSON)
    loadgen      drive a serve daemon with corpus load, write BENCH doc
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.baselines import iterative_modulo_schedule, list_schedule
from repro.codegen import emit_assembly, flat_listing
from repro.core import lower_bounds, schedule_loop
from repro.ddg import builders, generators, kernels, render
from repro.machine import presets


def _load_ddg(args):
    if args.kernel:
        return kernels.by_name(args.kernel)
    if args.ddg:
        try:
            with open(args.ddg, encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            raise SystemExit(
                f"cannot read DDG file {args.ddg}: "
                f"{type(exc).__name__}: {exc}"
            )
        from repro.ddg.errors import DdgError

        try:
            return builders.parse_ddg(text)
        except (ValueError, DdgError) as exc:
            raise SystemExit(f"cannot parse DDG file {args.ddg}: {exc}")
    if getattr(args, "source", None):
        from repro.frontend import OpClassMap, compile_loop

        classes = None
        if getattr(args, "classes", None):
            overrides = {}
            for pair in args.classes.split(","):
                key, _, value = pair.partition("=")
                if not value:
                    raise SystemExit(
                        f"--classes expects op=class pairs, got {pair!r}"
                    )
                overrides[key.strip()] = value.strip()
            classes = OpClassMap(**overrides)
        try:
            with open(args.source, encoding="utf-8") as handle:
                source_text = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            raise SystemExit(
                f"cannot read source file {args.source}: "
                f"{type(exc).__name__}: {exc}"
            )
        return compile_loop(source_text, name=args.source, classes=classes)
    raise SystemExit("one of --kernel, --ddg or --source is required")


def _machine_of(args):
    if getattr(args, "machine_file", None):
        from repro.machine.errors import MachineError
        from repro.machine.io import load_machine

        try:
            return load_machine(args.machine_file)
        except (OSError, ValueError, MachineError) as exc:
            raise SystemExit(
                f"cannot load machine file {args.machine_file}: {exc}"
            )
    return presets.by_name(args.machine)


def _policy_of(args):
    """Build a SupervisionPolicy from --deadline/--retries/--memory-mb.

    Returns None when no supervision flag was given, so callers can keep
    the (cheaper) in-process default paths.
    """
    from repro.supervision import SupervisionPolicy

    deadline = getattr(args, "deadline", None)
    retries = getattr(args, "retries", None)
    memory_mb = getattr(args, "memory_mb", None)
    if deadline is None and retries is None and memory_mb is None:
        return None
    kwargs = {}
    if deadline is not None:
        kwargs["deadline"] = deadline
    if retries is not None:
        kwargs["max_retries"] = retries
    if memory_mb is not None:
        kwargs["memory_mb"] = memory_mb
    return SupervisionPolicy(**kwargs)


def _atomic_write(path, text) -> None:
    from repro.supervision import atomic_write_text

    atomic_write_text(path, text)


def _backends_of(args):
    """Parse and validate ``--backends 'highs,bnb,sat'`` (or None).

    Unknown names and duplicates are rejected here, at the CLI
    boundary, with the same message shape the solver layer uses — a
    malformed roster must never reach the race and fail mid-dispatch.
    """
    from repro.parallel.race import PORTFOLIO_BACKENDS

    raw = getattr(args, "backends", None)
    if raw is None:
        return None
    roster = tuple(
        name.strip() for name in raw.split(",") if name.strip()
    )
    if not roster:
        raise SystemExit(
            "--backends must name at least one backend "
            f"(choose from: {', '.join(PORTFOLIO_BACKENDS)})"
        )
    seen = set()
    for name in roster:
        if name not in PORTFOLIO_BACKENDS:
            raise SystemExit(
                f"unknown backend {name!r} in --backends; "
                f"choose from: {', '.join(PORTFOLIO_BACKENDS)}"
            )
        if name in seen:
            raise SystemExit(
                f"--backends lists {name!r} twice; a roster is a set "
                "of distinct solvers to race"
            )
        seen.add(name)
    return roster


def _print_store_line(result) -> None:
    """One-line store outcome for schedule/race results (when enabled)."""
    stats = result.store
    if stats is None:
        return
    if stats.hit:
        print(
            f"store: hit ({stats.tier}, verified, "
            f"{stats.seconds * 1000:.1f} ms) — sweep skipped"
        )
    else:
        state = "published" if stats.published else "not published"
        extra = ", stale entry evicted" if stats.evicted else ""
        print(f"store: miss ({state}{extra})")


def _cmd_schedule(args) -> int:
    from repro.supervision import graceful_interrupts

    machine = _machine_of(args)
    ddg = _load_ddg(args)
    ddg.validate_against(machine)
    print(render.ascii_ddg(ddg, machine))
    bounds = lower_bounds(ddg, machine)
    print(f"T_dep={bounds.t_dep}  T_res={bounds.t_res}  T_lb={bounds.t_lb}")
    with graceful_interrupts():
        result = schedule_loop(
            ddg,
            machine,
            backend=args.backend,
            objective=args.objective,
            time_limit_per_t=args.time_limit,
            max_extra=args.max_extra,
            presolve=not args.no_presolve,
            warmstart=not args.no_warmstart,
            incremental=not args.no_incremental,
            supervision=_policy_of(args),
            store=args.store,
        )
    print(result.summary())
    _print_store_line(result)
    if args.explain:
        from repro.core.explain import explain_infeasibility

        for attempt in result.attempts:
            if attempt.status in ("optimal", "feasible"):
                continue
            diagnosis = explain_infeasibility(
                ddg, machine, attempt.t_period, backend=args.backend,
                time_limit=args.time_limit,
            )
            print(diagnosis.render(ddg))
    if result.schedule is None:
        print("no schedule found within the budget")
        return 1
    schedule = result.schedule
    print()
    print(schedule.render_tka())
    print()
    print(schedule.render_kernel())
    if args.assembly:
        print()
        print(emit_assembly(schedule))
    if args.listing:
        print()
        print(flat_listing(schedule, iterations=args.listing))
    if args.registers:
        from repro.registers import max_live, total_buffers, unroll_factor

        print()
        print(
            f"register pressure: buffers={total_buffers(schedule)} "
            f"(Ning-Gao), MaxLive={max_live(schedule)}, "
            f"MVE unroll={unroll_factor(schedule)}"
        )
    if args.export_lp:
        from repro.core import Formulation
        from repro.ilp.lp_format import write_lp

        formulation = Formulation(ddg, machine, schedule.t_period)
        formulation.build()
        _atomic_write(args.export_lp, write_lp(formulation.model))
        print(f"wrote ILP at T={schedule.t_period} to {args.export_lp}")
    if args.compare_heuristic:
        heuristic = iterative_modulo_schedule(ddg, machine)
        sequential = list_schedule(ddg, machine)
        print()
        print(
            f"heuristic (iterative modulo): II="
            f"{heuristic.achieved_ii}  |  ILP: T={schedule.t_period}  |  "
            f"no pipelining: II={sequential.effective_ii}"
        )
    return 0


def _cmd_batch(args) -> int:
    from repro.core.errors import SchedulingError
    from repro.parallel import run_batch
    from repro.supervision import graceful_interrupts

    machine = _machine_of(args)
    try:
        with graceful_interrupts():
            report = run_batch(
                args.paths,
                machine,
                backend=args.backend,
                time_limit_per_t=args.time_limit,
                max_extra=args.max_extra,
                presolve=not args.no_presolve,
                jobs=args.jobs,
                warmstart=not args.no_warmstart,
                incremental=not args.no_incremental,
                policy=_policy_of(args),
                journal=args.journal,
                resume=args.resume,
                store=args.store,
                backends=_backends_of(args),
            )
    except (OSError, ValueError, SchedulingError) as exc:
        raise SystemExit(f"batch: {exc}")
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    if args.out:
        report.save_json(args.out)
        print(f"wrote JSON report to {args.out}")
    return 0 if report.failed == 0 else 1


def _cmd_race(args) -> int:
    from repro.parallel import race_periods
    from repro.supervision import graceful_interrupts

    machine = _machine_of(args)
    ddg = _load_ddg(args)
    ddg.validate_against(machine)
    from repro.core.errors import SchedulingError

    try:
        with graceful_interrupts():
            result = race_periods(
                ddg,
                machine,
                backend=args.backend,
                time_limit_per_t=args.time_limit,
                max_extra=args.max_extra,
                presolve=not args.no_presolve,
                jobs=args.jobs,
                warmstart=not args.no_warmstart,
                incremental=not args.no_incremental,
                policy=_policy_of(args),
                store=args.store,
                backends=_backends_of(args),
            )
    except SchedulingError as exc:
        raise SystemExit(f"race: {exc}")
    print(result.summary())
    _print_store_line(result)
    if result.portfolio is not None:
        port = result.portfolio
        print(
            f"  portfolio [{', '.join(port['backends'])}]: "
            f"winner={port['winner_backend'] or 'none'}, "
            f"{port['killed_running']} loser(s) killed, "
            f"{port['cancelled_queued']} cancelled in queue"
        )
    for attempt in result.attempts:
        tag = f" [{attempt.backend}]" if attempt.backend else ""
        print(f"  T={attempt.t_period}: {attempt.status}{tag} "
              f"({attempt.seconds:.2f}s)")
    if result.schedule is None:
        print("no schedule found within the budget")
        return 1
    print()
    print(result.schedule.render_kernel())
    return 0


def _cmd_profile(args) -> int:
    """Build + solve one loop with presolve on and off, side by side."""
    from repro.core.bounds import modulo_feasible_t
    from repro.core.scheduler import AttemptConfig, attempt_period

    machine = _machine_of(args)
    ddg = _load_ddg(args)
    ddg.validate_against(machine)
    bounds = lower_bounds(ddg, machine)
    print(
        f"{ddg.name}: {ddg.num_ops} ops, {ddg.num_deps} deps  "
        f"(T_dep={bounds.t_dep} T_res={bounds.t_res} T_lb={bounds.t_lb})"
    )

    if args.t is not None:
        t_period = args.t
        if not modulo_feasible_t(ddg, machine, t_period):
            raise SystemExit(
                f"profile: T={t_period} violates the modulo scheduling "
                f"constraint for machine {machine.name!r}"
            )
    else:
        t_period = next(
            (
                t for t in range(
                    bounds.t_lb, bounds.t_lb + args.max_extra + 1
                )
                if modulo_feasible_t(ddg, machine, t)
            ),
            None,
        )
        if t_period is None:
            raise SystemExit(
                "profile: no admissible period in "
                f"[{bounds.t_lb}, {bounds.t_lb + args.max_extra}]"
            )

    runs = {}
    for label, presolve in (("presolve on", True), ("presolve off", False)):
        config = AttemptConfig(
            backend=args.backend,
            objective=args.objective,
            time_limit=args.time_limit,
            presolve=presolve,
        )
        outcome = attempt_period(ddg, machine, t_period, config)
        runs[label] = outcome.attempt
        _print_attempt_profile(t_period, label, outcome.attempt)

    on, off = runs["presolve on"], runs["presolve off"]
    if on.status != off.status:
        print()
        print(
            f"WARNING: status differs (on={on.status} off={off.status}) "
            "— check time limits before trusting the comparison"
        )
        return 1
    rows_off = off.model_stats["constraints"]
    time_off = off.model_stats["total_seconds"]
    if rows_off and time_off:
        rows_cut = 1.0 - on.model_stats["constraints"] / rows_off
        time_cut = 1.0 - on.model_stats["total_seconds"] / time_off
        print()
        print(
            f"presolve: {rows_cut:.1%} fewer rows, "
            f"{time_cut:.1%} less build+lower+solve time"
        )

    # Incremental sweep: rebuild the same attempt against the now-warm
    # SweepContext, so the reuse the T-sweep gets per follow-up period
    # is visible next to the cold numbers above.
    config = AttemptConfig(
        backend=args.backend,
        objective=args.objective,
        time_limit=args.time_limit,
    )
    outcome = attempt_period(ddg, machine, t_period, config)
    _print_attempt_profile(t_period, "warm context", outcome.attempt)
    _print_cache_counters()
    return 0


def _print_attempt_profile(t_period: int, label: str, attempt) -> None:
    """One attempt's model sizes, reuse counters and phase timings."""
    stats = attempt.model_stats
    print()
    via = f" via {attempt.backend}" if attempt.backend else ""
    print(f"T={t_period}, {label}: {attempt.status}{via}")
    if "cut_skip" in stats:
        print(f"  settled by recycled cut: {stats['cut_skip']} (no solve)")
        return
    print(
        f"  model     {stats['variables']} vars, "
        f"{stats['constraints']} rows, {stats['nonzeros']} nnz"
    )
    print(
        f"  eliminated  {stats['eliminated_variables']} vars, "
        f"{stats['eliminated_constraints']} rows, "
        f"{stats['eliminated_nonzeros']} nnz"
    )
    print(
        f"  reuse     {stats.get('reused_rows', 0)} rows reused, "
        f"{stats.get('rebuilt_rows', stats['constraints'])} rebuilt "
        f"(analysis {stats.get('analysis_seconds', 0.0):.4f}s)"
    )
    print(
        f"  phases    presolve {stats['presolve_seconds']:.4f}s  "
        f"build {stats['build_seconds']:.4f}s  "
        f"lower {stats['lower_seconds']:.4f}s  "
        f"solve {stats['solve_seconds']:.4f}s  "
        f"verify {stats.get('verify_seconds', 0.0):.4f}s  "
        f"total {stats['total_seconds']:.4f}s"
    )
    if "sat_encode_seconds" in stats:
        print(
            f"  sat       encode {stats['sat_encode_seconds']:.4f}s  "
            f"search {stats.get('sat_search_seconds', 0.0):.4f}s  "
            f"decode {stats.get('sat_decode_seconds', 0.0):.4f}s  "
            f"({stats.get('sat_vars', 0):.0f} vars, "
            f"{stats.get('sat_clauses', 0):.0f} clauses)"
        )
        print(
            f"  sat       {stats.get('sat_conflicts', 0):.0f} conflicts, "
            f"{stats.get('sat_decisions', 0):.0f} decisions, "
            f"{stats.get('sat_learned_clauses', 0):.0f} learned clauses "
            f"({stats.get('sat_restarts', 0):.0f} restarts)"
        )


def _print_cache_counters() -> None:
    """In-process memoization counters (LRU caches + store tiers)."""
    from repro.parallel.cache import cache_stats
    from repro.store.tiering import tier_stats

    print()
    print("in-process caches (this run):")
    for name, counters in {**cache_stats(), **tier_stats()}.items():
        if name == "incremental":
            print(
                f"  {name:<12} {counters['contexts']} context(s), "
                f"{counters['analysis_hits']} analysis hit(s), "
                f"{counters['cuts_harvested']} cut(s) banked, "
                f"{counters['attempts_skipped']} attempt(s) cut-skipped"
            )
            continue
        total = counters["hits"] + counters["misses"]
        line = f"  {name:<12} {counters['hits']}/{total} hit(s)"
        if "size" in counters:
            line += f", {counters['size']} entries"
        print(line)


def _cmd_cache(args) -> int:
    """Inspect and maintain the persistent schedule store."""
    import json

    from repro.store import ScheduleStore

    store = ScheduleStore(args.store)
    action = args.action

    if action == "stats":
        stats = store.stats()
        print(f"store {stats['root']}: {stats['entries']} entrie(s), "
              f"{stats['bytes']} bytes")
        if stats["oldest_mtime"] is not None:
            import time as time_module

            age = time_module.time() - stats["oldest_mtime"]
            print(f"oldest entry: {age / 3600:.1f} h old")
        return 0

    if action == "ls":
        count = 0
        for key, entry in store.entries():
            prov = entry.get("provenance", {})
            result = entry.get("result", {})
            sched = result.get("schedule", {})
            print(
                f"{key[:16]}  loop={prov.get('loop', '?'):<16} "
                f"T={sched.get('t_period', '?'):<3} "
                f"solve={prov.get('solve_seconds', 0):.2f}s"
            )
            count += 1
        print(f"{count} entrie(s)")
        return 0

    if action == "gc":
        removed = store.gc(max_bytes=args.max_bytes, max_age=args.max_age)
        print(
            f"gc: removed {removed['removed']} entrie(s), kept "
            f"{removed['kept']} ({removed['bytes']} bytes)"
        )
        return 0

    if action == "clear":
        removed = store.clear()
        print(f"cleared {removed} entrie(s)")
        return 0

    if action == "verify":
        from repro.core.errors import CoreError
        from repro.core.verify import verify_schedule
        from repro.ddg.builders import parse_ddg
        from repro.ddg.errors import DdgError
        from repro.store.entry import EntryError, entry_to_result
        from repro.store.keys import canonical_machine_digest

        machine = _machine_of(args)
        machine_digest = canonical_machine_digest(machine)
        checked = bad = skipped = 0
        for key, entry in store.entries():
            if entry.get("machine_digest") != machine_digest:
                skipped += 1
                continue
            checked += 1
            try:
                # Canonical text parses to ops in canonical order, so
                # the stored starts apply with the identity permutation.
                ddg = parse_ddg(entry["ddg"])
                result = entry_to_result(
                    entry, ddg, machine, list(range(ddg.num_ops))
                )
                verify_schedule(result.schedule)
            except (EntryError, DdgError, CoreError, KeyError,
                    ValueError) as exc:
                bad += 1
                print(f"BAD {key[:16]}: {type(exc).__name__}: {exc}")
                if args.evict:
                    store.delete(key)
        state = "evicted" if args.evict and bad else "kept"
        print(
            f"verified {checked} entrie(s) for machine "
            f"{machine.name!r}: {bad} bad ({state}), "
            f"{skipped} for other machines skipped"
        )
        return 1 if bad else 0

    if action == "warm":
        from repro.core.scheduler import AttemptConfig
        from repro.store import warm_store

        machine = _machine_of(args)
        config = AttemptConfig(
            backend=args.backend,
            objective=args.objective,
            time_limit=args.time_limit,
            presolve=not args.no_presolve,
            warmstart=not args.no_warmstart,
        )
        try:
            outcome = warm_store(
                args.journal, store, machine, config, args.max_extra
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cache warm: {exc}")
        print(
            f"warmed from {args.journal}: {outcome['published']}/"
            f"{outcome['examined']} entrie(s) published"
        )
        if outcome["skipped"]:
            print("skipped: " + json.dumps(outcome["skipped"], sort_keys=True))
        return 0

    raise SystemExit(f"unknown cache action {action!r}")


def _cmd_analyze(args) -> int:
    from repro.machine.collision import analyze

    machine = presets.by_name(args.machine)
    print(machine.render())
    print()
    for fu in machine.fu_types.values():
        report = analyze(fu.table)
        print(f"FU {fu.name} (x{fu.count}):")
        print(f"  forbidden latencies: {report['forbidden_latencies']}")
        print(f"  collision vector:    {report['initial_collision_vector']}")
        print(f"  greedy cycle:        {report['greedy_cycle']} "
              f"(avg {report['greedy_average']})")
        print(f"  MAL:                 {report['mal']}")
        print(f"  clean:               {report['is_clean']}")
    return 0


def _cmd_motivating(args) -> int:
    from repro.experiments import motivating as motivating_experiment

    print(motivating_experiment.report())
    return 0


def _cmd_suite(args) -> int:
    from repro.experiments.table4 import run_table4

    machine = presets.by_name(args.machine)
    loops = generators.suite(args.count, machine, seed=args.seed)
    table = run_table4(
        loops,
        machine,
        backend=args.backend,
        time_limit_per_t=args.time_limit,
    )
    print(table.render())
    return 0


def _cmd_list(args) -> int:
    print("kernels: " + ", ".join(sorted(kernels.KERNELS)))
    print("machines: " + ", ".join(sorted(presets.PRESETS)))
    return 0


def _cmd_gen(args) -> int:
    """Generate (or audit / regenerate) a manifest-backed corpus."""
    from repro.corpusgen import (
        CorpusGenError,
        default_families,
        regenerate_from,
        verify_corpus,
        write_corpus,
    )
    from repro.ddg.generators import GenParams

    try:
        if args.check:
            audit = verify_corpus(args.check)
            for problem in audit["problems"]:
                print(problem)
            print(
                f"checked {len(audit['checked'])} loop(s): "
                f"{len(audit['problems'])} problem(s)"
            )
            return 1 if audit["problems"] else 0

        if args.from_manifest:
            if not args.out:
                raise SystemExit("gen: --from-manifest requires --out")
            manifest = regenerate_from(args.from_manifest, args.out)
            print(
                f"regenerated {manifest.count} loop(s) into {args.out} "
                f"(seed {manifest.seed}, machine {manifest.machine}) — "
                "byte-identical to the manifest"
            )
            return 0

        if not args.out:
            raise SystemExit("gen: --out is required")
        base = GenParams(
            mode="guaranteed",
            min_ops=args.min_ops,
            max_ops=args.max_ops,
            cycles=args.cycles,
            cycle_depth=args.cycle_depth,
            max_distance=args.max_distance,
            distance_dist=args.distance_dist,
            profile=args.profile,
        )
        families = default_families(
            args.count,
            mode=args.mode,
            profile=args.profile,
            dsl_fraction=args.dsl_frac,
            adversarial_fraction=args.adversarial_frac,
            base=base,
        )
        manifest = write_corpus(args.out, args.seed, args.machine, families)
    except CorpusGenError as exc:
        raise SystemExit(f"gen: {exc}")
    sizes = [record.ops for record in manifest.loops]
    split = ", ".join(f"{f.name}={f.count}" for f in manifest.families)
    print(
        f"wrote {manifest.count} loop(s) + manifest.json to {args.out} "
        f"(seed {args.seed}, machine {args.machine}; {split}; sizes "
        f"{min(sizes)}-{max(sizes)}, mean {sum(sizes) / len(sizes):.1f})"
    )
    print(
        "reproduce with: repro gen --from-manifest "
        f"{args.out}/manifest.json --out DIR"
    )
    # Self-audit: the files we just wrote must verify against their
    # own manifest (cheap, and catches e.g. a full disk immediately).
    audit = verify_corpus(args.out)
    if audit["problems"]:
        for problem in audit["problems"]:
            print(problem)
        return 1
    return 0


def _cmd_corpus(args) -> int:
    """Dump a reproducible synthetic corpus as .ddg text files."""
    import os

    machine = presets.by_name(args.machine)
    loops = generators.suite(args.count, machine, seed=args.seed)
    os.makedirs(args.out, exist_ok=True)
    sizes = []
    for ddg in loops:
        path = os.path.join(args.out, f"{ddg.name}.ddg")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(builders.serialize_ddg(ddg))
        sizes.append(ddg.num_ops)
    print(
        f"wrote {len(loops)} loops to {args.out} "
        f"(sizes {min(sizes)}-{max(sizes)}, mean "
        f"{sum(sizes) / len(sizes):.1f}; seed {args.seed}, "
        f"machine {args.machine})"
    )
    return 0


def _add_supervision_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("supervision")
    group.add_argument(
        "--deadline", type=float, metavar="SEC",
        help="hard wall-clock deadline per worker task; a task past "
             "the deadline (plus a short grace) is killed and retried",
    )
    group.add_argument(
        "--retries", type=int, metavar="N",
        help="retry a crashed or hung worker task up to N times "
             "before recording the failure (default 2)",
    )
    group.add_argument(
        "--memory-mb", type=int, metavar="MB",
        help="per-worker address-space cap; a solve past the cap "
             "fails as 'oom' instead of taking the machine down",
    )


def _cmd_serve(args) -> int:
    from repro.serve.config import ServeConfig
    from repro.serve.daemon import serve_main

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        rate=args.rate,
        burst=args.burst,
        deadline=args.deadline,
        max_retries=args.retries,
        time_limit=args.time_limit,
        max_extra=args.max_extra,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        store=args.store,
        journal=args.journal,
        drain_grace=args.drain_grace,
        port_file=args.port_file,
    )
    return serve_main(config)


def _cmd_loadgen(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.serve.loadgen import (
        closed_loop,
        corpus_mix,
        open_loop,
        run_benchmark,
    )

    corpus = sorted(Path(args.corpus).glob("*.ddg"))
    if not corpus:
        raise SystemExit(f"no .ddg files under {args.corpus}")
    if args.port is None:
        doc = run_benchmark(
            corpus, args.machine, Path(args.out),
            requests=args.requests,
            concurrency=args.concurrency,
            workers=args.workers,
            open_rate=args.rate,
            time_limit=args.time_limit,
            backend=args.backend,
            warmstart=not args.no_warmstart,
            kill_restart=not args.no_kill_restart,
            faults=args.faults,
            seed=args.seed,
        )
        lost = (doc.get("restart") or {}).get("lost_jobs", [])
        print(
            f"loadgen: {args.requests} request(s), "
            f"coalesce_hits={doc['coalesce_hits']}, "
            f"error_rate={doc['error_rate']:.3f}, "
            f"lost_jobs={len(lost)} -> {args.out}"
        )
        return 1 if lost else 0
    from repro.serve.client import ServeClient
    from repro.supervision.atomicio import atomic_write_json

    client = ServeClient(args.host, args.port)
    texts = corpus_mix(corpus, args.requests, seed=args.seed)
    split = max(1, len(texts) // 2)
    closed = closed_loop(
        client, texts[:split], args.machine,
        concurrency=args.concurrency, backend=args.backend,
        warmstart=not args.no_warmstart,
    )
    opened = open_loop(
        client, texts[split:], args.machine, rate=args.rate,
        backend=args.backend, warmstart=not args.no_warmstart,
    )
    doc = {
        "bench": "serve_loadgen",
        "machine": args.machine,
        "requests": args.requests,
        "phases": [closed.to_json_dict(), opened.to_json_dict()],
        "daemon_stats": client.stats(),
    }
    atomic_write_json(args.out, doc)
    print(_json.dumps(
        {"phases": doc["phases"]}, indent=2, sort_keys=True
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rate-optimal software pipelining with structural "
        "hazards (Altman/Govindarajan/Gao, PLDI 1995).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_schedule = sub.add_parser("schedule", help="schedule one loop")
    p_schedule.add_argument("--kernel", help="named kernel (see 'list')")
    p_schedule.add_argument("--ddg", help="path to a DDG text file")
    p_schedule.add_argument(
        "--source", help="path to a loop-DSL source file (see repro.frontend)"
    )
    p_schedule.add_argument(
        "--classes", metavar="MAP",
        help="operator->op-class overrides for --source, e.g. "
             "'add=mac,mul=mac,div=div'",
    )
    p_schedule.add_argument("--machine", default="motivating")
    p_schedule.add_argument("--machine-file", metavar="PATH",
                            help="machine description file "
                                 "(overrides --machine)")
    p_schedule.add_argument("--backend", default="auto",
                            choices=("auto", "highs", "bnb", "sat"))
    p_schedule.add_argument("--objective", default="min_sum_t",
                            choices=("feasibility", "min_sum_t", "min_fu",
                                     "min_buffers", "min_lifetimes"))
    p_schedule.add_argument("--time-limit", type=float, default=30.0)
    p_schedule.add_argument("--max-extra", type=int, default=10)
    p_schedule.add_argument("--assembly", action="store_true",
                            help="emit PROLOG/KERNEL/EPILOG assembly")
    p_schedule.add_argument("--listing", type=int, metavar="ITERS",
                            help="emit an overlapped-iteration listing")
    p_schedule.add_argument("--registers", action="store_true",
                            help="report buffer/MaxLive pressure")
    p_schedule.add_argument("--explain", action="store_true",
                            help="diagnose why smaller periods failed")
    p_schedule.add_argument("--export-lp", metavar="PATH",
                            help="write the ILP in CPLEX LP format")
    p_schedule.add_argument("--compare-heuristic", action="store_true")
    p_schedule.add_argument("--no-presolve", action="store_true",
                            help="disable the ILP presolve pass")
    p_schedule.add_argument("--no-warmstart", action="store_true",
                            help="disable the heuristic warm-start "
                                 "pre-pass")
    p_schedule.add_argument("--no-incremental", action="store_true",
                            help="rebuild every sweep attempt cold "
                                 "(no shared analysis / recycled cuts)")
    p_schedule.add_argument("--store", metavar="DIR",
                            help="persistent schedule store directory "
                                 "(hits skip the solve entirely)")
    _add_supervision_flags(p_schedule)
    p_schedule.set_defaults(func=_cmd_schedule)

    p_batch = sub.add_parser(
        "batch",
        help="schedule .ddg files/directories across worker processes",
    )
    p_batch.add_argument(
        "paths", nargs="+", metavar="PATH",
        help=".ddg files and/or directories of them",
    )
    p_batch.add_argument("--machine", default="powerpc604")
    p_batch.add_argument("--machine-file", metavar="PATH",
                         help="machine description file (overrides "
                              "--machine)")
    p_batch.add_argument("--backend", default="auto",
                         choices=("auto", "highs", "bnb", "sat",
                                  "portfolio"))
    p_batch.add_argument("--backends", metavar="LIST",
                         help="explicit portfolio roster, e.g. "
                              "'highs,bnb,sat' (implies "
                              "--backend portfolio)")
    p_batch.add_argument("--time-limit", type=float, default=10.0,
                         help="per-period solver budget (seconds)")
    p_batch.add_argument("--max-extra", type=int, default=10)
    p_batch.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: CPU count)")
    p_batch.add_argument("--out", metavar="PATH",
                         help="write the JSON report to this file")
    p_batch.add_argument("--json", action="store_true",
                         help="print the JSON report instead of the table")
    p_batch.add_argument("--no-presolve", action="store_true",
                         help="disable the ILP presolve pass")
    p_batch.add_argument("--no-warmstart", action="store_true",
                         help="disable the heuristic warm-start pre-pass")
    p_batch.add_argument("--no-incremental", action="store_true",
                         help="rebuild every sweep attempt cold "
                              "(no shared analysis / recycled cuts)")
    p_batch.add_argument("--journal", metavar="PATH",
                         help="append every finished loop to this JSONL "
                              "checkpoint file")
    p_batch.add_argument("--resume", metavar="PATH",
                         help="resume from a journal: re-run only loops "
                              "that failed or never finished")
    p_batch.add_argument("--store", metavar="DIR",
                         help="persistent schedule store shared by all "
                              "workers and across runs")
    _add_supervision_flags(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_race = sub.add_parser(
        "race", help="race candidate periods of one loop concurrently"
    )
    p_race.add_argument("--kernel", help="named kernel (see 'list')")
    p_race.add_argument("--ddg", help="path to a DDG text file")
    p_race.add_argument("--source",
                        help="path to a loop-DSL source file")
    p_race.add_argument("--classes", metavar="MAP",
                        help="operator->op-class overrides for --source")
    p_race.add_argument("--machine", default="motivating")
    p_race.add_argument("--machine-file", metavar="PATH")
    p_race.add_argument("--backend", default="auto",
                        choices=("auto", "highs", "bnb", "sat",
                                 "portfolio"))
    p_race.add_argument("--backends", metavar="LIST",
                        help="explicit portfolio roster, e.g. "
                             "'highs,bnb,sat' (implies "
                             "--backend portfolio)")
    p_race.add_argument("--time-limit", type=float, default=30.0)
    p_race.add_argument("--max-extra", type=int, default=10)
    p_race.add_argument("--jobs", type=int, default=None)
    p_race.add_argument("--no-presolve", action="store_true",
                        help="disable the ILP presolve pass")
    p_race.add_argument("--no-warmstart", action="store_true",
                        help="disable the heuristic warm-start pre-pass")
    p_race.add_argument("--no-incremental", action="store_true",
                        help="rebuild every sweep attempt cold "
                             "(no shared analysis / recycled cuts)")
    p_race.add_argument("--store", metavar="DIR",
                        help="persistent schedule store directory "
                             "(hits skip the race entirely)")
    _add_supervision_flags(p_race)
    p_race.set_defaults(func=_cmd_race)

    p_profile = sub.add_parser(
        "profile",
        help="model sizes and phase timings with presolve on vs off",
    )
    p_profile.add_argument("--kernel", help="named kernel (see 'list')")
    p_profile.add_argument("--ddg", help="path to a DDG text file")
    p_profile.add_argument("--source",
                           help="path to a loop-DSL source file")
    p_profile.add_argument("--classes", metavar="MAP",
                           help="operator->op-class overrides for --source")
    p_profile.add_argument("--machine", default="motivating")
    p_profile.add_argument("--machine-file", metavar="PATH")
    p_profile.add_argument("--backend", default="auto",
                           choices=("auto", "highs", "bnb", "sat"))
    p_profile.add_argument("--objective", default="feasibility",
                           choices=("feasibility", "min_sum_t", "min_fu",
                                    "min_buffers", "min_lifetimes"))
    p_profile.add_argument("--t", type=int, default=None,
                           help="profile this period (default: first "
                                "admissible period at or above T_lb)")
    p_profile.add_argument("--time-limit", type=float, default=30.0)
    p_profile.add_argument("--max-extra", type=int, default=10)
    p_profile.set_defaults(func=_cmd_profile)

    p_cache = sub.add_parser(
        "cache", help="inspect/maintain the persistent schedule store"
    )
    cache_sub = p_cache.add_subparsers(dest="action", required=True)

    def _cache_action(name: str, help_text: str):
        action = cache_sub.add_parser(name, help=help_text)
        action.add_argument("--store", required=True, metavar="DIR",
                            help="schedule store directory")
        action.set_defaults(func=_cmd_cache, action=name)
        return action

    _cache_action("stats", "entry count, bytes, and age of the store")
    _cache_action("ls", "list entries (key, loop, period, solve time)")
    c_gc = _cache_action("gc", "evict entries by age and/or total size")
    c_gc.add_argument("--max-bytes", type=int, metavar="N",
                      help="shrink the store below N bytes "
                           "(oldest entries first)")
    c_gc.add_argument("--max-age", type=float, metavar="SEC",
                      help="evict entries older than SEC seconds")
    _cache_action("clear", "remove every entry")
    c_verify = _cache_action(
        "verify", "re-verify every entry against a machine"
    )
    c_verify.add_argument("--machine", default="powerpc604")
    c_verify.add_argument("--machine-file", metavar="PATH",
                          help="machine description file "
                               "(overrides --machine)")
    c_verify.add_argument("--evict", action="store_true",
                          help="delete entries that fail verification")
    c_warm = _cache_action(
        "warm", "publish entries from a batch journal/report"
    )
    c_warm.add_argument("journal", metavar="PATH",
                        help="batch journal (.jsonl) or report (.json) "
                             "with schedule payloads (report v5+)")
    c_warm.add_argument("--machine", default="powerpc604")
    c_warm.add_argument("--machine-file", metavar="PATH",
                        help="machine description file "
                             "(overrides --machine)")
    c_warm.add_argument("--backend", default="auto",
                        choices=("auto", "highs", "bnb", "sat"))
    c_warm.add_argument("--objective", default="feasibility",
                        choices=("feasibility", "min_sum_t", "min_fu",
                                 "min_buffers", "min_lifetimes"))
    c_warm.add_argument("--time-limit", type=float, default=10.0)
    c_warm.add_argument("--max-extra", type=int, default=10)
    c_warm.add_argument("--no-presolve", action="store_true")
    c_warm.add_argument("--no-warmstart", action="store_true")

    p_analyze = sub.add_parser(
        "analyze", help="pipeline-hazard analysis of a machine's FUs"
    )
    p_analyze.add_argument("--machine", default="motivating")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_motivating = sub.add_parser(
        "motivating", help="print the paper's Section 2 artifacts"
    )
    p_motivating.set_defaults(func=_cmd_motivating)

    p_suite = sub.add_parser("suite", help="run a synthetic corpus")
    p_suite.add_argument("--count", type=int, default=100)
    p_suite.add_argument("--seed", type=int, default=604)
    p_suite.add_argument("--machine", default="powerpc604")
    p_suite.add_argument("--backend", default="auto")
    p_suite.add_argument("--time-limit", type=float, default=10.0)
    p_suite.set_defaults(func=_cmd_suite)

    p_list = sub.add_parser("list", help="list kernels and machines")
    p_list.set_defaults(func=_cmd_list)

    p_gen = sub.add_parser(
        "gen",
        help="emit a seeded, manifest-reproducible loop corpus",
        description="Generate a corpus of loop DDGs plus a "
        "manifest.json that reproduces it byte-for-byte "
        "(see docs/corpus.md).",
    )
    p_gen.add_argument("--out", metavar="DIR",
                       help="corpus output directory")
    p_gen.add_argument("--seed", type=int, default=42)
    p_gen.add_argument("--count", type=int, default=1000)
    p_gen.add_argument("--machine", default="powerpc604",
                       help="machine preset the corpus targets "
                            "(manifests are preset-based)")
    p_gen.add_argument("--mode", default="mixed",
                       choices=("mixed", "guaranteed", "adversarial",
                                "dsl"),
                       help="family mix: mixed (default) blends "
                            "guaranteed-schedulable, DSL-compiled and "
                            "adversarial loops")
    p_gen.add_argument("--profile", default="scalar",
                       choices=("scalar", "fp", "int", "mem", "div"),
                       help="instruction-class mix profile")
    p_gen.add_argument("--min-ops", type=int, default=2)
    p_gen.add_argument("--max-ops", type=int, default=40)
    p_gen.add_argument("--cycles", type=int, default=1,
                       help="recurrence cycles per loop")
    p_gen.add_argument("--cycle-depth", type=int, default=1,
                       help="max ops per recurrence cycle")
    p_gen.add_argument("--max-distance", type=int, default=3)
    p_gen.add_argument("--distance-dist", default="uniform",
                       choices=("uniform", "geometric", "unit"),
                       help="loop-carried distance distribution")
    p_gen.add_argument("--dsl-frac", type=float, default=0.2,
                       help="fraction of DSL-compiled kernels in "
                            "mixed mode")
    p_gen.add_argument("--adversarial-frac", type=float, default=0.1,
                       help="fraction of adversarial loops in mixed "
                            "mode")
    p_gen.add_argument("--from-manifest", metavar="PATH",
                       help="regenerate a corpus byte-identically from "
                            "a manifest (ignores the generator knobs)")
    p_gen.add_argument("--check", metavar="DIR",
                       help="audit an existing corpus directory "
                            "against its manifest and exit")
    p_gen.set_defaults(func=_cmd_gen)

    p_corpus = sub.add_parser(
        "corpus", help="dump a synthetic loop corpus as .ddg files"
    )
    p_corpus.add_argument("--out", required=True, metavar="DIR")
    p_corpus.add_argument("--count", type=int, default=100)
    p_corpus.add_argument("--seed", type=int, default=604)
    p_corpus.add_argument("--machine", default="powerpc604")
    p_corpus.set_defaults(func=_cmd_corpus)

    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP solve daemon",
        description="Serve submit/poll solve requests over HTTP, "
        "dispatching onto a supervised worker pool with the "
        "content-addressed store as shared cache (see "
        "docs/service.md).",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="0 picks an ephemeral port "
                              "(see --port-file)")
    p_serve.add_argument("--port-file", metavar="PATH",
                         help="write the bound port here once "
                              "listening (for scripted startup)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="supervised solver processes")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="admission queue bound; beyond it "
                              "submissions are shed with 429")
    p_serve.add_argument("--rate", type=float, default=20.0,
                         help="per-client token-bucket refill "
                              "(requests/second)")
    p_serve.add_argument("--burst", type=int, default=20,
                         help="per-client token-bucket capacity")
    p_serve.add_argument("--deadline", type=float, default=120.0,
                         help="per-job wall-clock deadline (seconds)")
    p_serve.add_argument("--retries", type=int, default=1,
                         help="supervised retries per solve attempt")
    p_serve.add_argument("--time-limit", type=float, default=10.0,
                         help="solver time limit per request (seconds)")
    p_serve.add_argument("--max-extra", type=int, default=10,
                         help="periods above MII to sweep")
    p_serve.add_argument("--breaker-threshold", type=int, default=3,
                         help="consecutive failures before a backend "
                              "is circuit-broken")
    p_serve.add_argument("--breaker-cooldown", type=float, default=10.0,
                         help="seconds before a tripped backend is "
                              "probed again")
    p_serve.add_argument("--store", metavar="DIR",
                         help="content-addressed result store "
                              "(shared cache tier)")
    p_serve.add_argument("--journal", metavar="PATH",
                         help="accepted/done journal; enables "
                              "zero-lost-jobs restart")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         help="seconds to let in-flight jobs finish "
                              "on SIGTERM before halting")
    p_serve.set_defaults(func=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive a serve daemon with corpus load",
        description="Closed+open-loop load generator for the serve "
        "daemon.  With --manage (default) it boots its own daemon, "
        "runs the kill-and-restart differential and writes a BENCH "
        "document; with --port it targets a daemon you started.",
    )
    p_loadgen.add_argument("--corpus", default="corpus", metavar="DIR",
                           help=".ddg corpus directory to draw from")
    p_loadgen.add_argument("--machine", default="powerpc604")
    p_loadgen.add_argument("--requests", type=int, default=30)
    p_loadgen.add_argument("--out", default="BENCH_serve.json",
                           metavar="PATH")
    p_loadgen.add_argument("--workers", type=int, default=2,
                           help="daemon worker processes (managed "
                                "mode)")
    p_loadgen.add_argument("--concurrency", type=int, default=4,
                           help="closed-loop client threads")
    p_loadgen.add_argument("--rate", type=float, default=8.0,
                           help="open-loop arrival rate "
                                "(requests/second)")
    p_loadgen.add_argument("--time-limit", type=float, default=5.0)
    p_loadgen.add_argument("--backend", default="auto",
                           choices=("auto", "highs", "bnb", "sat",
                                    "portfolio"))
    p_loadgen.add_argument("--no-warmstart", action="store_true",
                           help="submit with warmstart off so solves "
                                "reach the ILP attempt sites (where "
                                "attempt-site faults fire)")
    p_loadgen.add_argument("--faults", metavar="SPEC",
                           help="REPRO_FAULTS spec injected into the "
                                "managed daemon (e.g. "
                                "crash@attempt:t=4)")
    p_loadgen.add_argument("--no-kill-restart", action="store_true",
                           help="skip the SIGKILL-mid-run restart "
                                "differential (managed mode)")
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument("--port", type=int, default=None,
                           help="target an already-running daemon "
                                "instead of booting one")
    p_loadgen.add_argument("--host", default="127.0.0.1")
    p_loadgen.set_defaults(func=_cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream reader (e.g. ``| head``) closed the pipe; point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
