#!/usr/bin/env python
"""Quickstart: schedule a loop and inspect the result.

Builds the dot-product kernel ``s += a[j] * b[j]``, schedules it on the
PowerPC-604-like machine model, and prints the bounds, the kernel, the
T/K/A matrices and the emitted prolog/kernel/epilog assembly.

Run:  python examples/quickstart.py
"""

from repro import kernels, presets, schedule_loop, verify_schedule
from repro.codegen import emit_assembly
from repro.ddg.render import ascii_ddg

def main() -> None:
    machine = presets.powerpc604()
    loop = kernels.dot_product()

    print(ascii_ddg(loop, machine))
    print()

    result = schedule_loop(loop, machine, objective="min_sum_t")
    print(result.summary())
    print(f"rate-optimality proven: {result.is_rate_optimal_proven}")
    print()

    schedule = result.schedule
    verify_schedule(schedule)  # independent check, never trusts the solver

    print(schedule.render_kernel())
    print()
    print(schedule.render_tka())
    print()
    print(emit_assembly(schedule))


if __name__ == "__main__":
    main()
