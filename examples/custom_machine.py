#!/usr/bin/env python
"""Define your own unclean machine and loop, then schedule them.

Models a small DSP-style core:

* one multiply-accumulate pipeline whose final (writeback) stage is busy
  two consecutive cycles — a structural hazard;
* two address-generation/memory units (clean, 2-deep);
* a blocking 6-cycle divider sharing the MAC unit (multi-function
  pipeline with a per-class reservation table).

The loop is an IIR biquad-like body with a loop-carried recurrence.

Run:  python examples/custom_machine.py
"""

from repro import Ddg, Machine, ReservationTable, schedule_loop, verify_schedule
from repro.baselines import iterative_modulo_schedule, list_schedule
from repro.sim import simulate


def build_machine() -> Machine:
    m = Machine("dsp-core")
    mac_table = ReservationTable.from_rows(
        [1, 0, 0, 0],   # issue
        [0, 1, 1, 0],   # multiply (two cycles - hazard!)
        [0, 0, 0, 1],   # writeback
    )
    m.add_fu_type("MAC", count=2, table=mac_table)
    m.add_fu_type("AGU", count=2, table=ReservationTable.clean(2))
    m.add_op_class("mac", "MAC", latency=4)
    m.add_op_class("div", "MAC", latency=6,
                   table=ReservationTable.non_pipelined(6))
    m.add_op_class("load", "AGU", latency=2)
    m.add_op_class("store", "AGU", latency=1)
    return m


def build_loop() -> Ddg:
    g = Ddg("biquad")
    x = g.add_op("ld_x", "load")
    c0 = g.add_op("ld_c0", "load")
    m0 = g.add_op("mac0", "mac")
    m1 = g.add_op("mac1", "mac")
    m2 = g.add_op("mac2", "mac")
    st = g.add_op("st_y", "store")
    g.add_dep(x, m0)
    g.add_dep(c0, m0)
    g.add_dep(m0, m1)
    g.add_dep(m1, m2)
    g.add_dep(m2, st)
    g.add_dep(m2, m1, distance=1)   # y[n-1] feedback
    g.add_dep(m2, m0, distance=2)   # y[n-2] feedback
    return g


def main() -> None:
    machine = build_machine()
    loop = build_loop()
    machine.validate()
    loop.validate_against(machine)

    print(machine.render())
    print()

    result = schedule_loop(loop, machine, objective="min_sum_t")
    print(result.summary())
    schedule = result.schedule
    verify_schedule(schedule)
    print(schedule.render_kernel())
    print()
    print(schedule.render_usage("MAC"))
    print()

    report = simulate(schedule, iterations=50)
    print(f"simulated 50 iterations: ok={report.ok}, "
          f"achieved II ~= {report.achieved_ii:.2f}")

    heuristic = iterative_modulo_schedule(loop, machine)
    sequential = list_schedule(loop, machine)
    print(f"ILP T={schedule.t_period}  "
          f"heuristic II={heuristic.achieved_ii}  "
          f"sequential II={sequential.effective_ii}")


if __name__ == "__main__":
    main()
