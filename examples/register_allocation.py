#!/usr/bin/env python
"""Register pressure and allocation for pipelined kernels.

Schedules a loop twice — plain feasibility vs the Ning–Gao
``min_buffers`` objective — then compares lifetimes, buffer totals,
MaxLive, and the actual register allocation (cyclic-interval coloring
with modulo variable expansion).  Finishes by emitting the
register-annotated kernel.

Run:  python examples/register_allocation.py
"""

from repro import Formulation, FormulationOptions, presets, schedule_loop
from repro.codegen import emit_assembly
from repro.ddg.kernels import spice_like
from repro.registers import (
    allocate_registers,
    lifetimes,
    max_live,
    total_buffers,
    unroll_factor,
)


def main() -> None:
    machine = presets.powerpc604()
    ddg = spice_like()
    t_opt = schedule_loop(ddg, machine).achieved_t
    print(f"loop {ddg.name!r}: rate-optimal T = {t_opt}")
    print()

    plain_form = Formulation(ddg, machine, t_opt)
    plain = plain_form.extract(plain_form.solve())
    tuned_form = Formulation(
        ddg, machine, t_opt, FormulationOptions(objective="min_buffers")
    )
    tuned = tuned_form.extract(tuned_form.solve())

    print(f"{'metric':<22} {'feasibility':>12} {'min_buffers':>12}")
    print(f"{'total buffers':<22} {total_buffers(plain):>12} "
          f"{total_buffers(tuned):>12}")
    print(f"{'MaxLive':<22} {max_live(plain):>12} {max_live(tuned):>12}")
    print(f"{'MVE unroll factor':<22} {unroll_factor(plain):>12} "
          f"{unroll_factor(tuned):>12}")
    print()

    print("longest value lifetimes under min_buffers:")
    for life in sorted(lifetimes(tuned), key=lambda l: -l.span)[:4]:
        producer = tuned.ddg.ops[life.producer].name
        consumer = tuned.ddg.ops[life.consumer].name
        print(f"  {producer} -> {consumer} (m={life.distance}): "
              f"{life.span} cycle(s)")
    print()

    allocation = allocate_registers(tuned)
    print(allocation.render())
    print()
    print(emit_assembly(tuned, allocation=allocation))


if __name__ == "__main__":
    main()
