#!/usr/bin/env python
"""Run the paper-style evaluation on a synthetic corpus.

Generates a reproducible loop corpus on the PowerPC-604-like model, runs
the rate-optimal scheduler over it, and prints the Table 4 buckets
(loops at T_lb, T_lb+1, ...) and the Table 5 solver-effort summary.

Run:  python examples/benchmark_suite.py [count]
(default 150 loops; the paper used 1066 — pass 1066 to match)
"""

import sys

from repro import generators, presets
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    machine = presets.powerpc604()
    corpus = generators.suite(count, machine, seed=604)
    sizes = [g.num_ops for g in corpus]
    print(f"corpus: {count} loops, {min(sizes)}-{max(sizes)} ops "
          f"(mean {sum(sizes) / count:.1f})")
    print()

    table4 = run_table4(corpus, machine, time_limit_per_t=10.0)
    print(table4.render())
    print()
    print(run_table5(table4.results).render())


if __name__ == "__main__":
    main()
