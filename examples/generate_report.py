#!/usr/bin/env python
"""Generate a full evaluation report (markdown) in one run.

Executes the complete experiment suite — the §2 motivating narrative,
Table 4/5 over a corpus, the heuristic comparison, both ablations and
the ILP-vs-enumeration race — and writes ``report.md`` next to this
script (or to the path given as argv[1]).

Run:  python examples/generate_report.py [report.md] [corpus_size]
"""

import sys
import time

from repro import generators, presets
from repro.experiments import motivating
from repro.experiments.ablation import counting_vs_coloring, hazard_ablation
from repro.experiments.compare import run_compare
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "report.md"
    corpus_size = int(sys.argv[2]) if len(sys.argv) > 2 else 120
    machine = presets.powerpc604()
    corpus = generators.suite(corpus_size, machine, seed=604)
    small = corpus[:20]
    started = time.time()

    sections = ["# Evaluation report", ""]

    sections += ["## Motivating example (§2, E1–E6)", "```"]
    sections.append(motivating.report())
    sections += ["```", ""]

    table4 = run_table4(corpus, machine, time_limit_per_t=10.0)
    sections += [f"## Table 4 ({corpus_size}-loop corpus, E8)", "```",
                 table4.render(), "```", ""]

    table5 = run_table5(table4.results)
    sections += ["## Table 5 (solver effort, E9)", "```",
                 table5.render(), "```", ""]

    comparison = run_compare(small, machine, time_limit_per_t=5.0)
    sections += ["## ILP vs heuristics vs sequential (E10)", "```",
                 comparison.render(), "```", ""]

    gaps = counting_vs_coloring(small, machine, time_limit_per_t=5.0)
    witnessed = sum(1 for r in gaps if r.has_gap)
    sections += [
        "## Counting vs coloring (E11)",
        f"- loops with a certified counting-vs-coloring gap: "
        f"{witnessed}/{len(gaps)} (plus the motivating example's "
        "canonical T=3 vs T=4 gap)",
        "",
    ]

    hazards = hazard_ablation(small, machine, time_limit_per_t=5.0)
    sections += ["## Structural-hazard ablation (E12)", "```",
                 hazards.render(), "```", ""]

    sections.append(
        f"_Generated in {time.time() - started:.1f}s by "
        "examples/generate_report.py_"
    )
    text = "\n".join(sections) + "\n"
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {out_path} ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
