#!/usr/bin/env python
"""ILP vs heuristic modulo scheduling vs no pipelining, per kernel.

Schedules every hand-built kernel three ways and prints the initiation
intervals side by side — the E10 comparison of DESIGN.md at kernel
granularity.  The ILP column is provably minimal for fixed FU
assignment; the heuristic may match it or lose cycles; running
iterations back-to-back is the upper baseline.

Run:  python examples/heuristic_comparison.py
"""

from repro import kernels, presets, schedule_loop
from repro.baselines import (
    iterative_modulo_schedule,
    list_schedule,
    slack_modulo_schedule,
)


def main() -> None:
    machine = presets.powerpc604()
    print(f"{'kernel':<12} {'ops':>4} {'T_lb':>5} {'ILP':>5} "
          f"{'IMS':>5} {'slack':>6} {'sequential':>11} {'speedup':>8}")
    for name in sorted(kernels.KERNELS):
        loop = kernels.KERNELS[name]()
        ilp = schedule_loop(loop, machine)
        ims = iterative_modulo_schedule(loop, machine)
        slack = slack_modulo_schedule(loop, machine)
        sequential = list_schedule(loop, machine)
        speedup = sequential.effective_ii / ilp.achieved_t
        print(
            f"{name:<12} {loop.num_ops:>4} {ilp.bounds.t_lb:>5} "
            f"{ilp.achieved_t:>5} {ims.achieved_ii:>5} "
            f"{slack.achieved_ii:>6} "
            f"{sequential.effective_ii:>11} {speedup:>7.2f}x"
        )


if __name__ == "__main__":
    main()
