#!/usr/bin/env python
"""Compile loop source code to a rate-optimal pipelined kernel.

Walks the whole pipeline the paper's testbed implied: parse a C-like
loop body, build the dependence graph (scalar def-use + affine memory
dependence analysis), compute lower bounds, solve the unified
scheduling+mapping ILP, and emit the pipelined assembly.

Run:  python examples/compile_from_source.py
"""

from repro import presets, schedule_loop, verify_schedule
from repro.codegen import emit_assembly
from repro.ddg.render import ascii_ddg
from repro.frontend import compile_loop
from repro.registers import max_live, total_buffers

SOURCES = {
    "sdot": """
        for i:
            s = s + x[i] * y[i]
    """,
    "smooth": """
        for i:
            d[i+1] = (d[i] + e[i]) * 0.5      # memory-carried recurrence
    """,
    "sweep": """
        for i:
            t = a[i] - b[i-2]
            u = t / 3
            c[i] = u + c[i-1]                 # second recurrence via memory
    """,
}


def main() -> None:
    machine = presets.powerpc604()
    for name, source in SOURCES.items():
        print("=" * 64)
        print(f"loop {name!r}:")
        print("\n".join(f"    {line.strip()}" for line in
                        source.strip().splitlines()))
        ddg = compile_loop(source, name=name)
        print()
        print(ascii_ddg(ddg, machine))
        result = schedule_loop(ddg, machine, objective="min_sum_t")
        print()
        print(result.summary())
        schedule = result.schedule
        verify_schedule(schedule)
        print(f"buffers={total_buffers(schedule)}  "
              f"MaxLive={max_live(schedule)}")
        print()
        print(emit_assembly(schedule))
        print()


if __name__ == "__main__":
    main()
