#!/usr/bin/env python
"""The paper's §2 motivating example, end to end.

Reproduces the full §2 storyline:

1. the loop's lower bounds say ``T_lb = 3``;
2. a schedule at T=3 exists *if* operations may pick their FP unit at run
   time (Schedule A, Table 1) — the simulator executes it hazard-free;
3. no **fixed** instruction-to-FU assignment exists at T=3 (the three FP
   ops form a triangle in the circular-arc overlap graph, but only two FP
   units exist);
4. the unified scheduling+mapping ILP proves T=3 infeasible and delivers
   a verified fixed-assignment schedule at T=4 (Schedule B, Table 2),
   whose K vector matches the paper's Figure 3 exactly.

Run:  python examples/motivating_example.py
"""

from repro.experiments import motivating


def main() -> None:
    print(motivating.report())


if __name__ == "__main__":
    main()
